//! The typed wire protocol shared by `bfhrf serve` and `bfhrf query`.
//!
//! Version 2 of the daemon protocol. Frames are still one JSON document
//! per line (NDJSON), so v1 clients keep working unchanged, but ops,
//! payloads, error codes, and protocol versions are one typed surface —
//! [`Request`], [`Response`], [`ErrorCode`], [`Outcome`] — instead of
//! ad-hoc `req.get("op")` string pokes scattered through server and
//! client.
//!
//! # Versioning
//!
//! A request carries an optional `"v"` member; absent means version 1.
//! The server answers any version up to [`PROTO_VERSION`] and rejects
//! higher ones with a typed error, so an old daemon fails a new client
//! loudly instead of mis-parsing it. The [`Request::Hello`] handshake
//! lets a client discover the server's version and batch ceiling before
//! committing to v2 framing:
//!
//! ```text
//! → {"v":2,"op":"hello"}
//! ← {"ok":true,"v":2,"max_batch":4096}
//! ```
//!
//! # Tree encodings
//!
//! Tree payloads default to Newick text. A v2 client may ask for the
//! compact binary encoding in its handshake; the server echoes the
//! encoding it accepted, and **only after seeing that echo** may the
//! client switch its tree payloads to base64-wrapped [`phylo_wire`] tree
//! records (taxon ids in the **server's** namespace — fetch it with the
//! `taxa` op and remap first):
//!
//! ```text
//! → {"v":2,"op":"hello","encoding":"bin"}
//! ← {"ok":true,"v":2,"max_batch":4096,"encoding":"bin"}
//! → {"v":2,"op":"taxa"}
//! ← {"ok":true,"generation":0,"taxa":["A","B",...]}
//! → {"v":2,"op":"batch","queries":["sQQC...base64...="]}
//! ```
//!
//! The negotiation is per-connection and strictly opt-in: a server that
//! predates the binary encoding simply omits the echo, and the client
//! falls back to Newick. Responses are identical either way — same JSON,
//! same scores, byte for byte.
//!
//! # The batch op (v2's headline)
//!
//! The paper frames collection queries as q independent probes against
//! one hash, which makes the serve path embarrassingly batchable: a
//! `batch` frame carries N query trees, is scored against **one**
//! snapshot generation (never a mix, even if an admin mutation lands
//! mid-batch), and returns one frame of N rows in query order. Framing,
//! JSON, Newick parse setup, and syscall costs amortize over N. An
//! optional `"id"` is echoed verbatim in the response so pipelined
//! clients can correlate in-flight frames:
//!
//! ```text
//! → {"v":2,"op":"batch","id":7,"queries":["((A,B),(C,D));",...]}
//! ← {"ok":true,"id":7,"n_taxa":4,"generation":0,"snap":0,
//!    "scores":[{"index":0,...},...],"notes":[]}
//! ```
//!
//! Batches above the server's `max_batch` ceiling are rejected with a
//! typed error and the connection stays usable.
//!
//! # Pipelining
//!
//! Any number of frames may be in flight on one connection; responses
//! come back strictly in request order. The server defers socket flushes
//! while more complete frames are already buffered, so a pipelined burst
//! costs ~one write syscall, not one per response.

use crate::json::{self, Json};

/// The protocol version this build speaks.
pub const PROTO_VERSION: u32 = 2;
/// Hard ceiling on query trees per `batch` frame.
pub const MAX_BATCH: usize = 4096;

/// Wire-level failure codes (`"code"` in an error response). Clients map
/// these to process exit codes: `budget` → 3, everything else → 1.
/// `busy` is retryable — a client with `--retries` backs off and
/// reconnects instead of failing; old clients fall through to exit 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Generic request failure: bad frame, bad payload, unknown op.
    Error,
    /// The request was refused or cancelled by a per-request resource
    /// budget (`--mem-budget`, `--timeout-ms`).
    Budget,
    /// The server is at its connection ceiling and shed this connection
    /// instead of queueing it. Safe to retry after a backoff.
    Busy,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Error => "error",
            ErrorCode::Budget => "budget",
            ErrorCode::Busy => "busy",
        }
    }

    /// Parse the wire spelling; unknown codes read as [`ErrorCode::Error`]
    /// so a newer server never crashes an older client.
    pub fn from_wire(s: &str) -> ErrorCode {
        match s {
            "budget" => ErrorCode::Budget,
            "busy" => ErrorCode::Busy,
            _ => ErrorCode::Error,
        }
    }
}

/// Request outcome labels, finer than [`ErrorCode`]: `cancelled`
/// (deadline expiry) and `budget` (allocation refusal) share the `budget`
/// wire code and exit code but are different operational signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The request succeeded.
    Ok,
    /// Generic failure.
    Error,
    /// Allocation refused by the memory budget.
    Budget,
    /// Cancelled at the request deadline.
    Cancelled,
    /// Shed at the connection ceiling before any request ran.
    Busy,
}

impl Outcome {
    /// All outcomes, in metrics-label order.
    pub const ALL: [Outcome; 5] = [
        Outcome::Ok,
        Outcome::Error,
        Outcome::Budget,
        Outcome::Cancelled,
        Outcome::Busy,
    ];

    /// The wire/label spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::Budget => "budget",
            Outcome::Cancelled => "cancelled",
            Outcome::Busy => "busy",
        }
    }

    /// The error code this outcome travels under on the wire.
    pub fn code(self) -> ErrorCode {
        match self {
            Outcome::Budget | Outcome::Cancelled => ErrorCode::Budget,
            Outcome::Busy => ErrorCode::Busy,
            _ => ErrorCode::Error,
        }
    }
}

/// Every op the protocol knows, plus the `Unknown` sink that absorbs
/// unparseable frames so each request lands in exactly one metrics
/// series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Version/capability handshake (v2).
    Hello,
    /// Average RF of each query against the references.
    AvgRf,
    /// Index + score of the lowest-average query.
    BestQuery,
    /// N independent queries, one frame, one snapshot generation (v2).
    Batch,
    /// Liveness + health probe: generation, WAL depth, uptime (v2).
    Ping,
    /// Index counters + metrics snapshot.
    Stats,
    /// Append trees (admin).
    Add,
    /// Remove trees (admin).
    Remove,
    /// Fold the WAL into a fresh snapshot (admin).
    Compact,
    /// Cross-collection RF: one catalog collection's trees scored against
    /// another's via restriction to the common taxa (v2).
    Xavgrf,
    /// Create a catalog collection (admin, v2).
    CatalogCreate,
    /// Drop a catalog collection (admin, v2).
    CatalogDrop,
    /// List catalog collections (v2).
    CatalogList,
    /// The server's taxon labels in intern order, so a binary-encoding
    /// client can remap its local taxon ids before encoding (v2).
    Taxa,
    /// Stop the daemon.
    Shutdown,
    /// Unparseable frame or unrecognized op name.
    Unknown,
}

impl Op {
    /// All ops in metrics-label order; `Unknown` is last.
    pub const ALL: [Op; 16] = [
        Op::Hello,
        Op::AvgRf,
        Op::BestQuery,
        Op::Batch,
        Op::Ping,
        Op::Stats,
        Op::Add,
        Op::Remove,
        Op::Compact,
        Op::Xavgrf,
        Op::CatalogCreate,
        Op::CatalogDrop,
        Op::CatalogList,
        Op::Taxa,
        Op::Shutdown,
        Op::Unknown,
    ];

    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Op::Hello => "hello",
            Op::AvgRf => "avgrf",
            Op::BestQuery => "best-query",
            Op::Batch => "batch",
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Add => "add",
            Op::Remove => "remove",
            Op::Compact => "compact",
            Op::Xavgrf => "xavgrf",
            Op::CatalogCreate => "catalog-create",
            Op::CatalogDrop => "catalog-drop",
            Op::CatalogList => "catalog-list",
            Op::Taxa => "taxa",
            Op::Shutdown => "shutdown",
            Op::Unknown => "unknown",
        }
    }

    /// Parse the wire spelling.
    pub fn from_name(s: &str) -> Option<Op> {
        Op::ALL
            .iter()
            .copied()
            .filter(|&op| op != Op::Unknown)
            .find(|op| op.name() == s)
    }

    /// This op's slot in [`Op::ALL`] (metrics array index).
    pub fn index(self) -> usize {
        Op::ALL.iter().position(|&o| o == self).unwrap_or(0)
    }
}

/// Presentation flags on scoring ops, applied server-side so the served
/// table matches the offline `avgrf` report byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryFlags {
    /// Divide averages by the maximum `2(n-3)`.
    pub normalized: bool,
    /// Report the divide-by-2 RF convention.
    pub halved: bool,
}

/// A parsed, typed request payload. Every op that touches index state
/// carries an optional `collection` routing field (v2): absent or
/// `"default"` targets the daemon's default index, anything else a
/// catalog collection.
/// Tree payload encodings a connection can negotiate at `hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireEncoding {
    /// Newick text (the default; every protocol version speaks it).
    #[default]
    Newick,
    /// Base64-wrapped `phylo-wire` binary tree records, taxon ids in the
    /// server's namespace.
    Bin,
}

impl WireEncoding {
    /// All encodings, in metrics-label order.
    pub const ALL: [WireEncoding; 2] = [WireEncoding::Newick, WireEncoding::Bin];

    /// This encoding's slot in [`WireEncoding::ALL`] (metrics array index).
    pub fn index(self) -> usize {
        WireEncoding::ALL
            .iter()
            .position(|&e| e == self)
            .unwrap_or(0)
    }

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            WireEncoding::Newick => "newick",
            WireEncoding::Bin => "bin",
        }
    }

    /// Parse the wire spelling.
    pub fn from_name(s: &str) -> Option<WireEncoding> {
        match s {
            "newick" => Some(WireEncoding::Newick),
            "bin" => Some(WireEncoding::Bin),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version/capability handshake, optionally asking the server to
    /// accept a non-default tree encoding on this connection.
    Hello {
        /// Requested tree payload encoding; `None` keeps Newick. The
        /// switch only takes effect once the server echoes it back.
        encoding: Option<WireEncoding>,
    },
    /// Score each query against the references (v1 op; a v2 client uses
    /// [`Request::Batch`] for the same semantics plus generation pinning).
    AvgRf {
        /// Newick query trees.
        queries: Vec<String>,
        /// Presentation flags.
        flags: QueryFlags,
        /// Catalog collection to score against (v2).
        collection: Option<String>,
    },
    /// Index + score of the lowest-average query.
    BestQuery {
        /// Newick query trees.
        queries: Vec<String>,
        /// Catalog collection to score against (v2).
        collection: Option<String>,
    },
    /// N independent queries in one frame, answered from one snapshot.
    Batch {
        /// Newick query trees (≤ the server's `max_batch`).
        queries: Vec<String>,
        /// Presentation flags.
        flags: QueryFlags,
        /// Catalog collection to score against (v2).
        collection: Option<String>,
    },
    /// Liveness + health probe; cheap enough for load balancers to poll.
    Ping {
        /// Catalog collection to report on instead of the default (v2).
        collection: Option<String>,
    },
    /// Index counters + metrics snapshot.
    Stats {
        /// Catalog collection to report on instead of the default (v2).
        collection: Option<String>,
    },
    /// Append trees (admin).
    Add {
        /// Newick trees to add.
        trees: Vec<String>,
        /// Catalog collection to mutate (v2).
        collection: Option<String>,
    },
    /// Remove trees (admin, all-or-nothing).
    Remove {
        /// Newick trees to remove.
        trees: Vec<String>,
        /// Catalog collection to mutate (v2).
        collection: Option<String>,
    },
    /// Fold the WAL into a fresh snapshot (admin).
    Compact {
        /// Catalog collection to compact (v2).
        collection: Option<String>,
    },
    /// Score collection `queries`' trees against collection `refs` via
    /// restriction to their common taxa (v2).
    Xavgrf {
        /// Reference collection name (or `"default"`).
        refs: String,
        /// Query collection name (or `"default"`).
        queries: String,
        /// Presentation flags.
        flags: QueryFlags,
    },
    /// Create a catalog collection from Newick trees (admin, v2).
    CatalogCreate {
        /// Collection name.
        name: String,
        /// Initial Newick trees (may be empty).
        trees: Vec<String>,
    },
    /// Drop a catalog collection (admin, v2).
    CatalogDrop {
        /// Collection name.
        name: String,
    },
    /// List catalog collections (v2).
    CatalogList,
    /// The server's taxon labels in intern order (v2).
    Taxa {
        /// Catalog collection to report on instead of the default.
        collection: Option<String>,
    },
    /// Stop the daemon.
    Shutdown,
}

impl Request {
    /// The op this request is an instance of.
    pub fn op(&self) -> Op {
        match self {
            Request::Hello { .. } => Op::Hello,
            Request::AvgRf { .. } => Op::AvgRf,
            Request::BestQuery { .. } => Op::BestQuery,
            Request::Batch { .. } => Op::Batch,
            Request::Ping { .. } => Op::Ping,
            Request::Stats { .. } => Op::Stats,
            Request::Add { .. } => Op::Add,
            Request::Remove { .. } => Op::Remove,
            Request::Compact { .. } => Op::Compact,
            Request::Xavgrf { .. } => Op::Xavgrf,
            Request::CatalogCreate { .. } => Op::CatalogCreate,
            Request::CatalogDrop { .. } => Op::CatalogDrop,
            Request::CatalogList => Op::CatalogList,
            Request::Taxa { .. } => Op::Taxa,
            Request::Shutdown => Op::Shutdown,
        }
    }

    /// The `collection` routing field, for ops that carry one.
    pub fn collection(&self) -> Option<&str> {
        match self {
            Request::AvgRf { collection, .. }
            | Request::BestQuery { collection, .. }
            | Request::Batch { collection, .. }
            | Request::Ping { collection }
            | Request::Stats { collection }
            | Request::Add { collection, .. }
            | Request::Remove { collection, .. }
            | Request::Compact { collection }
            | Request::Taxa { collection } => collection.as_deref(),
            _ => None,
        }
    }
}

/// One request frame: protocol version, optional client correlation id
/// (echoed in the response), and the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Protocol version; 1 when the frame carries no `"v"` member.
    pub version: u32,
    /// Client correlation id, echoed verbatim in the response. Must stay
    /// below 2⁵³ — JSON numbers are doubles, and larger ids would come
    /// back rounded. Sequence counters never get near that.
    pub id: Option<u64>,
    /// The typed request.
    pub request: Request,
}

impl Envelope {
    /// A v1 frame (no version member on the wire).
    pub fn v1(request: Request) -> Envelope {
        Envelope {
            version: 1,
            id: None,
            request,
        }
    }

    /// A v2 frame.
    pub fn v2(request: Request, id: Option<u64>) -> Envelope {
        Envelope {
            version: PROTO_VERSION,
            id,
            request,
        }
    }
}

/// A typed frame-parse failure: which op to attribute it to in metrics
/// (`Op::Unknown` when the frame never resolved to one) and the message.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// Metrics attribution.
    pub op: Op,
    /// Human-readable cause.
    pub message: String,
}

impl ProtoError {
    fn new(op: Op, message: impl Into<String>) -> ProtoError {
        ProtoError {
            op,
            message: message.into(),
        }
    }
}

fn string_array(req: &Json, op: Op, key: &str) -> Result<Vec<String>, ProtoError> {
    let items = req
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::new(op, format!("request needs a {key:?} array")))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| ProtoError::new(op, format!("tree {i} is not a string")))
        })
        .collect()
}

fn string_field(req: &Json, op: Op, key: &str) -> Result<String, ProtoError> {
    req.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::new(op, format!("request needs a {key:?} string")))
}

fn collection_field(req: &Json, op: Op) -> Result<Option<String>, ProtoError> {
    match req.get("collection") {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ProtoError::new(op, "\"collection\" must be a string")),
    }
}

fn encoding_field(req: &Json, op: Op) -> Result<Option<WireEncoding>, ProtoError> {
    match req.get("encoding") {
        None => Ok(None),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| ProtoError::new(op, "\"encoding\" must be a string"))?;
            WireEncoding::from_name(s).map(Some).ok_or_else(|| {
                ProtoError::new(
                    op,
                    format!("unknown encoding {s:?} (expected \"newick\" or \"bin\")"),
                )
            })
        }
    }
}

fn query_flags(req: &Json) -> QueryFlags {
    let flag = |key: &str| req.get(key).and_then(Json::as_bool).unwrap_or(false);
    QueryFlags {
        normalized: flag("normalized"),
        halved: flag("halved"),
    }
}

impl Envelope {
    /// Parse one request frame (either protocol version) into its typed
    /// form. Failures say which op they should be attributed to.
    pub fn from_json(req: &Json) -> Result<Envelope, ProtoError> {
        let version = match req.get("v") {
            None => 1,
            Some(v) => v.as_u64().map(|v| v as u32).ok_or_else(|| {
                ProtoError::new(Op::Unknown, "\"v\" must be a protocol version number")
            })?,
        };
        let id = req.get("id").and_then(Json::as_u64);
        let Some(op_name) = req.get("op").and_then(Json::as_str) else {
            return Err(ProtoError::new(
                Op::Unknown,
                "request needs an \"op\" string",
            ));
        };
        let Some(op) = Op::from_name(op_name) else {
            return Err(ProtoError::new(
                Op::Unknown,
                format!(
                    "unknown op {op_name:?} (expected hello, avgrf, best-query, batch, ping, \
                     stats, add, remove, compact, xavgrf, catalog-create, catalog-drop, \
                     catalog-list, taxa, shutdown)"
                ),
            ));
        };
        if version > PROTO_VERSION {
            return Err(ProtoError::new(
                op,
                format!(
                    "unsupported protocol version {version} (this server speaks ≤ {PROTO_VERSION})"
                ),
            ));
        }
        let request = match op {
            Op::Hello => Request::Hello {
                encoding: encoding_field(req, op)?,
            },
            Op::AvgRf => Request::AvgRf {
                queries: string_array(req, op, "queries")?,
                flags: query_flags(req),
                collection: collection_field(req, op)?,
            },
            Op::BestQuery => Request::BestQuery {
                queries: string_array(req, op, "queries")?,
                collection: collection_field(req, op)?,
            },
            Op::Batch => Request::Batch {
                queries: string_array(req, op, "queries")?,
                flags: query_flags(req),
                collection: collection_field(req, op)?,
            },
            Op::Ping => Request::Ping {
                collection: collection_field(req, op)?,
            },
            Op::Stats => Request::Stats {
                collection: collection_field(req, op)?,
            },
            Op::Add => Request::Add {
                trees: string_array(req, op, "trees")?,
                collection: collection_field(req, op)?,
            },
            Op::Remove => Request::Remove {
                trees: string_array(req, op, "trees")?,
                collection: collection_field(req, op)?,
            },
            Op::Compact => Request::Compact {
                collection: collection_field(req, op)?,
            },
            Op::Xavgrf => Request::Xavgrf {
                refs: string_field(req, op, "refs")?,
                queries: string_field(req, op, "queries")?,
                flags: query_flags(req),
            },
            Op::CatalogCreate => Request::CatalogCreate {
                name: string_field(req, op, "name")?,
                trees: match req.get("trees") {
                    None => Vec::new(),
                    Some(_) => string_array(req, op, "trees")?,
                },
            },
            Op::CatalogDrop => Request::CatalogDrop {
                name: string_field(req, op, "name")?,
            },
            Op::CatalogList => Request::CatalogList,
            Op::Taxa => Request::Taxa {
                collection: collection_field(req, op)?,
            },
            Op::Shutdown => Request::Shutdown,
            Op::Unknown => unreachable!("from_name never yields Unknown"),
        };
        Ok(Envelope {
            version,
            id,
            request,
        })
    }

    /// Render this frame for the wire. v1 envelopes omit the `"v"`
    /// member, so the output of a v1 round trip is exactly what a v1
    /// client would have sent.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = Vec::with_capacity(6);
        if self.version != 1 {
            fields.push(("v", u64::from(self.version).into()));
        }
        fields.push(("op", self.request.op().name().into()));
        if let Some(id) = self.id {
            fields.push(("id", id.into()));
        }
        let trees = |ts: &[String]| Json::Arr(ts.iter().map(|t| t.as_str().into()).collect());
        let push_flags = |fields: &mut Vec<(&str, Json)>, flags: &QueryFlags| {
            if flags.normalized {
                fields.push(("normalized", true.into()));
            }
            if flags.halved {
                fields.push(("halved", true.into()));
            }
        };
        match &self.request {
            Request::AvgRf { queries, flags, .. } | Request::Batch { queries, flags, .. } => {
                fields.push(("queries", trees(queries)));
                push_flags(&mut fields, flags);
            }
            Request::BestQuery { queries, .. } => fields.push(("queries", trees(queries))),
            Request::Add { trees: ts, .. } | Request::Remove { trees: ts, .. } => {
                fields.push(("trees", trees(ts)));
            }
            Request::Xavgrf {
                refs,
                queries,
                flags,
            } => {
                fields.push(("refs", refs.as_str().into()));
                fields.push(("queries", queries.as_str().into()));
                push_flags(&mut fields, flags);
            }
            Request::CatalogCreate { name, trees: ts } => {
                fields.push(("name", name.as_str().into()));
                if !ts.is_empty() {
                    fields.push(("trees", trees(ts)));
                }
            }
            Request::CatalogDrop { name } => fields.push(("name", name.as_str().into())),
            Request::Hello { encoding } => {
                if let Some(enc) = encoding {
                    fields.push(("encoding", enc.as_str().into()));
                }
            }
            Request::Ping { .. }
            | Request::Stats { .. }
            | Request::Compact { .. }
            | Request::CatalogList
            | Request::Taxa { .. }
            | Request::Shutdown => {}
        }
        if let Some(c) = self.request.collection() {
            fields.push(("collection", c.into()));
        }
        Json::obj(fields)
    }
}

/// One score row in an `avgrf`/`batch` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRow {
    /// Query index within the request frame.
    pub index: usize,
    /// Splits of the query unmatched in the references (summed).
    pub left: u64,
    /// Splits of the references unmatched in the query (summed).
    pub right: u64,
    /// Number of reference trees scored against.
    pub n_refs: usize,
    /// The (possibly normalized/halved) average RF.
    pub avg: f64,
}

/// Index counters carried in a `stats` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsBody {
    /// Compaction generation.
    pub generation: u64,
    /// Trees in the hash.
    pub n_trees: usize,
    /// Taxa in the namespace.
    pub n_taxa: usize,
    /// Distinct splits stored.
    pub distinct: usize,
    /// Sum of stored frequencies.
    pub sum: u64,
    /// WAL records since the last compaction.
    pub wal_pending: usize,
    /// Requests served by this daemon so far.
    pub served: u64,
}

/// One collection row in a `catalog-list` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogRow {
    /// Collection name.
    pub name: String,
    /// Whether it is currently open (resident under the byte budget).
    pub open: bool,
    /// Accounted frozen-table bytes when open, 0 otherwise.
    pub resident_bytes: usize,
}

/// A typed response payload. [`Response::to_json`] emits the exact v1
/// wire shapes for the ops v1 defined (plus additive members), so v1
/// clients parse v2 servers unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake answer: the server's protocol version and batch ceiling.
    Hello {
        /// Server protocol version.
        version: u32,
        /// Max query trees per `batch` frame.
        max_batch: usize,
        /// Tree encoding the server accepted for this connection. `None`
        /// means Newick (and keeps the pre-encoding frame byte-identical);
        /// clients must not send binary payloads unless this echoes
        /// [`WireEncoding::Bin`].
        encoding: Option<WireEncoding>,
    },
    /// Scores for `avgrf`/`batch`, in query order, all answered from the
    /// single snapshot identified by `generation`/`snap`.
    Scores {
        /// Taxa in the reference namespace.
        n_taxa: usize,
        /// Compaction generation of the snapshot that answered.
        generation: u64,
        /// Serve-side snapshot swap id (bumps on every admin mutation).
        snap: u64,
        /// One row per query.
        scores: Vec<ScoreRow>,
        /// Degradation notes (empty when clean).
        notes: Vec<String>,
    },
    /// The `best-query` answer.
    Best {
        /// Index of the lowest-average query.
        best_index: usize,
        /// Its average RF.
        avg: f64,
        /// Its total RF.
        total: u64,
        /// Degradation notes (empty when clean).
        notes: Vec<String>,
    },
    /// Index counters plus a metrics snapshot.
    Stats {
        /// The counters.
        body: StatsBody,
        /// Metrics exposition document (see `phylo-obs`).
        metrics: Json,
    },
    /// `add`/`remove` confirmation.
    Applied {
        /// Trees applied.
        applied: usize,
        /// Trees in the hash afterwards.
        n_trees: usize,
    },
    /// `compact` confirmation.
    Compacted {
        /// New compaction generation.
        generation: u64,
        /// Distinct splits in the fresh snapshot.
        distinct: usize,
        /// Always zero after a compaction.
        wal_pending: usize,
    },
    /// The `ping` answer: a minimal health summary served without taking
    /// the admin lock, so it stays responsive under mutation load.
    Pong {
        /// Compaction generation of the published snapshot.
        generation: u64,
        /// WAL records since the last compaction.
        wal_pending: u64,
        /// Milliseconds since the daemon bound its listener.
        uptime_ms: u64,
        /// Total collections hosted (default + catalog). `None` on v1
        /// frames, which keep the exact v1 shape.
        collections: Option<u64>,
        /// Collections currently open (default + resident catalog pool).
        /// `None` on v1 frames.
        open_collections: Option<u64>,
    },
    /// Cross-collection scores from `xavgrf`, in query-collection tree
    /// order, computed over the two collections' common taxa.
    XScores {
        /// Size of the shared taxon set the trees were restricted to.
        common_taxa: usize,
        /// One row per query-collection tree.
        scores: Vec<ScoreRow>,
        /// Degradation notes (empty when clean).
        notes: Vec<String>,
    },
    /// `catalog-create` confirmation.
    Created {
        /// The new collection's name.
        name: String,
        /// Trees folded into it.
        n_trees: usize,
    },
    /// `catalog-drop` confirmation.
    Dropped {
        /// The dropped collection's name.
        name: String,
    },
    /// The `catalog-list` answer.
    Catalog {
        /// One row per collection, sorted by name.
        collections: Vec<CatalogRow>,
    },
    /// The `taxa` answer: the collection's taxon labels in intern order
    /// (the id namespace binary tree records must use), pinned to a
    /// generation so clients can detect a compaction race.
    Taxa {
        /// Compaction generation the label order belongs to.
        generation: u64,
        /// Labels, position == taxon id.
        labels: Vec<String>,
    },
    /// `shutdown` acknowledged; the daemon exits after sending this.
    Shutdown,
    /// A request failure.
    Error {
        /// Wire code (drives client exit codes).
        code: ErrorCode,
        /// Finer operational label.
        outcome: Outcome,
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// Render for the wire, echoing `id` when the request carried one.
    pub fn to_json(&self, id: Option<u64>) -> Json {
        let ok = !matches!(self, Response::Error { .. });
        let mut fields: Vec<(&str, Json)> = vec![("ok", ok.into())];
        if let Some(id) = id {
            fields.push(("id", id.into()));
        }
        let notes_json =
            |notes: &[String]| Json::Arr(notes.iter().map(|n| n.as_str().into()).collect());
        match self {
            Response::Hello {
                version,
                max_batch,
                encoding,
            } => {
                fields.push(("v", u64::from(*version).into()));
                fields.push(("max_batch", (*max_batch).into()));
                if let Some(enc) = encoding {
                    fields.push(("encoding", enc.as_str().into()));
                }
            }
            Response::Scores {
                n_taxa,
                generation,
                snap,
                scores,
                notes,
            } => {
                fields.push(("n_taxa", (*n_taxa).into()));
                fields.push(("generation", (*generation).into()));
                fields.push(("snap", (*snap).into()));
                let rows = scores
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("index", s.index.into()),
                            ("left", s.left.into()),
                            ("right", s.right.into()),
                            ("n_refs", s.n_refs.into()),
                            ("avg", s.avg.into()),
                        ])
                    })
                    .collect();
                fields.push(("scores", Json::Arr(rows)));
                fields.push(("notes", notes_json(notes)));
            }
            Response::Best {
                best_index,
                avg,
                total,
                notes,
            } => {
                fields.push(("best_index", (*best_index).into()));
                fields.push(("avg", (*avg).into()));
                fields.push(("total", (*total).into()));
                fields.push(("notes", notes_json(notes)));
            }
            Response::Stats { body, metrics } => {
                fields.push(("generation", body.generation.into()));
                fields.push(("n_trees", body.n_trees.into()));
                fields.push(("n_taxa", body.n_taxa.into()));
                fields.push(("distinct", body.distinct.into()));
                fields.push(("sum", body.sum.into()));
                fields.push(("wal_pending", body.wal_pending.into()));
                fields.push(("served", body.served.into()));
                fields.push(("metrics", metrics.clone()));
            }
            Response::Applied { applied, n_trees } => {
                fields.push(("applied", (*applied).into()));
                fields.push(("n_trees", (*n_trees).into()));
            }
            Response::Compacted {
                generation,
                distinct,
                wal_pending,
            } => {
                fields.push(("generation", (*generation).into()));
                fields.push(("distinct", (*distinct).into()));
                fields.push(("wal_pending", (*wal_pending).into()));
            }
            Response::Pong {
                generation,
                wal_pending,
                uptime_ms,
                collections,
                open_collections,
            } => {
                fields.push(("pong", true.into()));
                fields.push(("generation", (*generation).into()));
                fields.push(("wal_pending", (*wal_pending).into()));
                fields.push(("uptime_ms", (*uptime_ms).into()));
                if let Some(c) = collections {
                    fields.push(("collections", (*c).into()));
                }
                if let Some(o) = open_collections {
                    fields.push(("open_collections", (*o).into()));
                }
            }
            Response::XScores {
                common_taxa,
                scores,
                notes,
            } => {
                fields.push(("common_taxa", (*common_taxa).into()));
                let rows = scores
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("index", s.index.into()),
                            ("left", s.left.into()),
                            ("right", s.right.into()),
                            ("n_refs", s.n_refs.into()),
                            ("avg", s.avg.into()),
                        ])
                    })
                    .collect();
                fields.push(("scores", Json::Arr(rows)));
                fields.push(("notes", notes_json(notes)));
            }
            Response::Created { name, n_trees } => {
                fields.push(("created", name.as_str().into()));
                fields.push(("n_trees", (*n_trees).into()));
            }
            Response::Dropped { name } => fields.push(("dropped", name.as_str().into())),
            Response::Catalog { collections } => {
                let rows = collections
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("name", c.name.as_str().into()),
                            ("open", c.open.into()),
                            ("resident_bytes", c.resident_bytes.into()),
                        ])
                    })
                    .collect();
                fields.push(("catalog", Json::Arr(rows)));
            }
            Response::Taxa { generation, labels } => {
                fields.push(("generation", (*generation).into()));
                fields.push((
                    "taxa",
                    Json::Arr(labels.iter().map(|l| l.as_str().into()).collect()),
                ));
            }
            Response::Shutdown => fields.push(("shutdown", true.into())),
            Response::Error {
                code,
                outcome,
                message,
            } => {
                fields.push(("code", code.as_str().into()));
                fields.push(("outcome", outcome.as_str().into()));
                fields.push(("error", message.as_str().into()));
            }
        }
        Json::obj(fields)
    }

    /// Parse a response frame back into its typed form (plus the echoed
    /// id, if any). Shapes are discriminated by their distinguishing
    /// members, so no op context is needed.
    pub fn from_json(resp: &Json) -> Result<(Response, Option<u64>), String> {
        let id = resp.get("id").and_then(Json::as_u64);
        let ok = resp
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("response is missing \"ok\"")?;
        let u = |key: &str| -> Result<u64, String> {
            resp.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response is missing {key:?}"))
        };
        let f = |key: &str| -> Result<f64, String> {
            resp.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("response is missing {key:?}"))
        };
        let notes = || -> Vec<String> {
            resp.get("notes")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(|n| n.as_str().map(str::to_string))
                .collect()
        };
        if !ok {
            let code =
                ErrorCode::from_wire(resp.get("code").and_then(Json::as_str).unwrap_or("error"));
            let outcome_str = resp.get("outcome").and_then(Json::as_str);
            let outcome = Outcome::ALL
                .iter()
                .copied()
                .find(|o| Some(o.as_str()) == outcome_str)
                .unwrap_or(match code {
                    ErrorCode::Budget => Outcome::Budget,
                    ErrorCode::Busy => Outcome::Busy,
                    ErrorCode::Error => Outcome::Error,
                });
            let message = resp
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("server reported an unspecified failure")
                .to_string();
            return Ok((
                Response::Error {
                    code,
                    outcome,
                    message,
                },
                id,
            ));
        }
        let resp_t = if resp.get("max_batch").is_some() {
            Response::Hello {
                version: u("v")? as u32,
                max_batch: u("max_batch")? as usize,
                // An unrecognized echo reads as None: the client then
                // refuses to switch encodings, which is the safe default.
                encoding: resp
                    .get("encoding")
                    .and_then(Json::as_str)
                    .and_then(WireEncoding::from_name),
            }
        } else if let Some(rows) = resp.get("scores").and_then(Json::as_arr) {
            let scores = rows
                .iter()
                .enumerate()
                .map(|(i, row)| -> Result<ScoreRow, String> {
                    let field = |key: &str| {
                        row.get(key)
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("score row {i} is missing {key:?}"))
                    };
                    Ok(ScoreRow {
                        index: field("index")? as usize,
                        left: field("left")? as u64,
                        right: field("right")? as u64,
                        n_refs: field("n_refs")? as usize,
                        avg: field("avg")?,
                    })
                })
                .collect::<Result<_, _>>()?;
            // "common_taxa" distinguishes a cross-collection answer from
            // a plain scores frame before the generation members are
            // consulted.
            if resp.get("common_taxa").is_some() {
                return Ok((
                    Response::XScores {
                        common_taxa: u("common_taxa")? as usize,
                        scores,
                        notes: notes(),
                    },
                    id,
                ));
            }
            Response::Scores {
                n_taxa: u("n_taxa")? as usize,
                // Absent on pre-v2 servers: read as generation 0 / snap 0.
                generation: resp.get("generation").and_then(Json::as_u64).unwrap_or(0),
                snap: resp.get("snap").and_then(Json::as_u64).unwrap_or(0),
                scores,
                notes: notes(),
            }
        } else if resp.get("best_index").is_some() {
            Response::Best {
                best_index: u("best_index")? as usize,
                avg: f("avg")?,
                total: u("total")?,
                notes: notes(),
            }
        } else if resp.get("metrics").is_some() {
            Response::Stats {
                body: StatsBody {
                    generation: u("generation")?,
                    n_trees: u("n_trees")? as usize,
                    n_taxa: u("n_taxa")? as usize,
                    distinct: u("distinct")? as usize,
                    sum: u("sum")?,
                    wal_pending: u("wal_pending")? as usize,
                    served: u("served")?,
                },
                metrics: resp.get("metrics").cloned().unwrap_or(Json::Null),
            }
        } else if resp.get("applied").is_some() {
            Response::Applied {
                applied: u("applied")? as usize,
                n_trees: u("n_trees")? as usize,
            }
        } else if resp.get("created").is_some() {
            Response::Created {
                name: resp
                    .get("created")
                    .and_then(Json::as_str)
                    .ok_or("\"created\" must be the collection name")?
                    .to_string(),
                n_trees: u("n_trees")? as usize,
            }
        } else if resp.get("dropped").is_some() {
            Response::Dropped {
                name: resp
                    .get("dropped")
                    .and_then(Json::as_str)
                    .ok_or("\"dropped\" must be the collection name")?
                    .to_string(),
            }
        } else if let Some(rows) = resp.get("catalog").and_then(Json::as_arr) {
            let collections = rows
                .iter()
                .enumerate()
                .map(|(i, row)| -> Result<CatalogRow, String> {
                    Ok(CatalogRow {
                        name: row
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or_else(|| format!("catalog row {i} is missing \"name\""))?
                            .to_string(),
                        open: row.get("open").and_then(Json::as_bool).unwrap_or(false),
                        resident_bytes: row
                            .get("resident_bytes")
                            .and_then(Json::as_u64)
                            .unwrap_or(0) as usize,
                    })
                })
                .collect::<Result<_, _>>()?;
            Response::Catalog { collections }
        } else if resp.get("pong").is_some() {
            // Checked before the bare-"generation" Compacted arm below,
            // which a pong frame would otherwise satisfy.
            Response::Pong {
                generation: u("generation")?,
                wal_pending: u("wal_pending")?,
                uptime_ms: u("uptime_ms")?,
                collections: resp.get("collections").and_then(Json::as_u64),
                open_collections: resp.get("open_collections").and_then(Json::as_u64),
            }
        } else if let Some(rows) = resp.get("taxa").and_then(Json::as_arr) {
            // Checked before the bare-"generation" Compacted arm, which a
            // taxa frame would otherwise satisfy.
            let labels = rows
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    l.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("taxa label {i} is not a string"))
                })
                .collect::<Result<_, _>>()?;
            Response::Taxa {
                generation: u("generation")?,
                labels,
            }
        } else if resp.get("shutdown").is_some() {
            Response::Shutdown
        } else if resp.get("generation").is_some() {
            Response::Compacted {
                generation: u("generation")?,
                distinct: u("distinct")? as usize,
                wal_pending: u("wal_pending")? as usize,
            }
        } else {
            return Err("response matches no known shape".to_string());
        };
        Ok((resp_t, id))
    }
}

/// Parse one wire line into a typed envelope. Unparseable JSON is an
/// `Op::Unknown` error like any other malformed frame.
pub fn parse_request(line: &str) -> Result<Envelope, ProtoError> {
    let doc = json::parse(line).map_err(|e| ProtoError::new(Op::Unknown, e))?;
    Envelope::from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_round_trip() {
        for op in Op::ALL {
            if op == Op::Unknown {
                assert_eq!(Op::from_name("unknown"), None, "unknown is not a wire op");
            } else {
                assert_eq!(Op::from_name(op.name()), Some(op));
            }
            assert_eq!(Op::ALL[op.index()], op);
        }
    }

    #[test]
    fn v1_frames_parse_and_render_without_version() {
        let env =
            parse_request(r#"{"op":"avgrf","queries":["((A,B),(C,D));"],"halved":true}"#).unwrap();
        assert_eq!(env.version, 1);
        assert_eq!(env.id, None);
        assert_eq!(env.request.op(), Op::AvgRf);
        let text = env.to_json().to_string();
        assert!(
            !text.contains("\"v\""),
            "v1 frames carry no version: {text}"
        );
        assert_eq!(parse_request(&text).unwrap(), env);
    }

    #[test]
    fn unsupported_version_is_a_typed_error() {
        let err = parse_request(r#"{"v":3,"op":"stats"}"#).unwrap_err();
        assert_eq!(err.op, Op::Stats);
        assert!(err.message.contains("unsupported protocol version 3"));
    }

    #[test]
    fn unknown_op_and_bad_json_attribute_to_unknown() {
        assert_eq!(parse_request("not json").unwrap_err().op, Op::Unknown);
        assert_eq!(
            parse_request(r#"{"op":"frobnicate"}"#).unwrap_err().op,
            Op::Unknown
        );
        assert_eq!(parse_request(r#"{"no_op":1}"#).unwrap_err().op, Op::Unknown);
    }

    #[test]
    fn payload_errors_attribute_to_their_op() {
        let err = parse_request(r#"{"op":"avgrf"}"#).unwrap_err();
        assert_eq!(err.op, Op::AvgRf);
        assert!(err.message.contains("queries"));
        let err = parse_request(r#"{"v":2,"op":"batch","queries":[42]}"#).unwrap_err();
        assert_eq!(err.op, Op::Batch);
        let err = parse_request(r#"{"op":"add","trees":"nope"}"#).unwrap_err();
        assert_eq!(err.op, Op::Add);
    }

    #[test]
    fn error_code_exit_semantics() {
        assert_eq!(ErrorCode::from_wire("budget"), ErrorCode::Budget);
        assert_eq!(ErrorCode::from_wire("error"), ErrorCode::Error);
        assert_eq!(ErrorCode::from_wire("???"), ErrorCode::Error);
        assert_eq!(ErrorCode::from_wire("busy"), ErrorCode::Busy);
        assert_eq!(Outcome::Cancelled.code(), ErrorCode::Budget);
        assert_eq!(Outcome::Budget.code(), ErrorCode::Budget);
        assert_eq!(Outcome::Error.code(), ErrorCode::Error);
        assert_eq!(Outcome::Busy.code(), ErrorCode::Busy);
    }

    #[test]
    fn pong_is_not_mistaken_for_compacted() {
        let pong = Response::Pong {
            generation: 3,
            wal_pending: 7,
            uptime_ms: 12_345,
            collections: None,
            open_collections: None,
        };
        let (parsed, id) = Response::from_json(&pong.to_json(Some(9))).unwrap();
        assert_eq!(parsed, pong);
        assert_eq!(id, Some(9));
        // A compacted frame (bare "generation") still parses as itself.
        let compacted = Response::Compacted {
            generation: 4,
            distinct: 10,
            wal_pending: 0,
        };
        let (parsed, _) = Response::from_json(&compacted.to_json(None)).unwrap();
        assert_eq!(parsed, compacted);
    }

    #[test]
    fn pong_catalog_fields_are_additive() {
        // A v1 pong carries no catalog members at all.
        let v1 = Response::Pong {
            generation: 0,
            wal_pending: 0,
            uptime_ms: 1,
            collections: None,
            open_collections: None,
        };
        let text = v1.to_json(None).to_string();
        assert!(
            !text.contains("collections"),
            "v1 pong gained a member: {text}"
        );
        // A v2 pong round-trips them.
        let v2 = Response::Pong {
            generation: 0,
            wal_pending: 0,
            uptime_ms: 1,
            collections: Some(4),
            open_collections: Some(2),
        };
        let (parsed, _) = Response::from_json(&v2.to_json(None)).unwrap();
        assert_eq!(parsed, v2);
    }

    #[test]
    fn collection_routing_field_round_trips_and_is_typed() {
        let env = parse_request(
            r#"{"v":2,"op":"batch","queries":["((A,B),(C,D));"],"collection":"mammals"}"#,
        )
        .unwrap();
        assert_eq!(env.request.collection(), Some("mammals"));
        let text = env.to_json().to_string();
        assert!(text.contains(r#""collection":"mammals""#));
        assert_eq!(parse_request(&text).unwrap(), env);
        // A frame without the field parses to None and renders without it.
        let env = parse_request(r#"{"v":2,"op":"compact"}"#).unwrap();
        assert_eq!(env.request.collection(), None);
        assert!(!env.to_json().to_string().contains("collection"));
        // A non-string collection is a typed error on the right op.
        let err = parse_request(r#"{"v":2,"op":"ping","collection":7}"#).unwrap_err();
        assert_eq!(err.op, Op::Ping);
    }

    #[test]
    fn catalog_ops_round_trip() {
        let env = parse_request(
            r#"{"v":2,"op":"catalog-create","name":"mammals","trees":["((A,B),(C,D));"]}"#,
        )
        .unwrap();
        assert_eq!(env.request.op(), Op::CatalogCreate);
        assert_eq!(parse_request(&env.to_json().to_string()).unwrap(), env);
        // trees is optional on create.
        let env = parse_request(r#"{"v":2,"op":"catalog-create","name":"empty"}"#).unwrap();
        assert!(matches!(
            &env.request,
            Request::CatalogCreate { trees, .. } if trees.is_empty()
        ));
        let env = parse_request(r#"{"v":2,"op":"catalog-drop","name":"mammals"}"#).unwrap();
        assert_eq!(parse_request(&env.to_json().to_string()).unwrap(), env);
        let env = parse_request(r#"{"v":2,"op":"catalog-list"}"#).unwrap();
        assert_eq!(env.request, Request::CatalogList);
        // A missing name is a typed error on the right op.
        let err = parse_request(r#"{"v":2,"op":"catalog-drop"}"#).unwrap_err();
        assert_eq!(err.op, Op::CatalogDrop);
        assert!(err.message.contains("name"));
    }

    #[test]
    fn hello_encoding_negotiation_is_additive_and_typed() {
        // A bare hello (any version) parses to None and renders with no
        // encoding member — byte-identical to the pre-encoding frame.
        let env = parse_request(r#"{"v":2,"op":"hello"}"#).unwrap();
        assert_eq!(env.request, Request::Hello { encoding: None });
        assert!(!env.to_json().to_string().contains("encoding"));
        // Asking for bin round-trips.
        let env = parse_request(r#"{"v":2,"op":"hello","encoding":"bin"}"#).unwrap();
        assert_eq!(
            env.request,
            Request::Hello {
                encoding: Some(WireEncoding::Bin)
            }
        );
        assert_eq!(parse_request(&env.to_json().to_string()).unwrap(), env);
        // Unknown or non-string encodings are typed errors on hello.
        let err = parse_request(r#"{"v":2,"op":"hello","encoding":"xml"}"#).unwrap_err();
        assert_eq!(err.op, Op::Hello);
        assert!(err.message.contains("unknown encoding"));
        let err = parse_request(r#"{"v":2,"op":"hello","encoding":7}"#).unwrap_err();
        assert_eq!(err.op, Op::Hello);
        // The response echo is additive: absent unless negotiated.
        let plain = Response::Hello {
            version: 2,
            max_batch: 16,
            encoding: None,
        };
        let text = plain.to_json(None).to_string();
        assert!(
            !text.contains("encoding"),
            "plain hello grew a member: {text}"
        );
        let (parsed, _) = Response::from_json(&plain.to_json(None)).unwrap();
        assert_eq!(parsed, plain);
        let bin = Response::Hello {
            version: 2,
            max_batch: 16,
            encoding: Some(WireEncoding::Bin),
        };
        let (parsed, _) = Response::from_json(&bin.to_json(None)).unwrap();
        assert_eq!(parsed, bin);
    }

    #[test]
    fn taxa_op_round_trips_and_is_not_mistaken_for_compacted() {
        let env = parse_request(r#"{"v":2,"op":"taxa"}"#).unwrap();
        assert_eq!(env.request, Request::Taxa { collection: None });
        let env = parse_request(r#"{"v":2,"op":"taxa","collection":"mammals"}"#).unwrap();
        assert_eq!(env.request.collection(), Some("mammals"));
        assert_eq!(parse_request(&env.to_json().to_string()).unwrap(), env);

        let taxa = Response::Taxa {
            generation: 3,
            labels: vec!["A".into(), "B".into(), "C".into()],
        };
        let (parsed, id) = Response::from_json(&taxa.to_json(Some(4))).unwrap();
        assert_eq!(parsed, taxa);
        assert_eq!(id, Some(4));
        // An empty label set still discriminates away from Compacted.
        let empty = Response::Taxa {
            generation: 0,
            labels: vec![],
        };
        let (parsed, _) = Response::from_json(&empty.to_json(None)).unwrap();
        assert_eq!(parsed, empty);
    }

    #[test]
    fn xavgrf_and_catalog_responses_round_trip() {
        let env = parse_request(r#"{"v":2,"op":"xavgrf","refs":"a","queries":"b","halved":true}"#)
            .unwrap();
        assert_eq!(env.request.op(), Op::Xavgrf);
        assert_eq!(parse_request(&env.to_json().to_string()).unwrap(), env);

        let xs = Response::XScores {
            common_taxa: 6,
            scores: vec![ScoreRow {
                index: 0,
                left: 1,
                right: 2,
                n_refs: 3,
                avg: 1.0,
            }],
            notes: vec![],
        };
        let (parsed, _) = Response::from_json(&xs.to_json(None)).unwrap();
        assert_eq!(
            parsed, xs,
            "common_taxa must win over the plain scores shape"
        );

        let created = Response::Created {
            name: "mammals".into(),
            n_trees: 9,
        };
        let (parsed, _) = Response::from_json(&created.to_json(None)).unwrap();
        assert_eq!(parsed, created);
        let dropped = Response::Dropped {
            name: "mammals".into(),
        };
        let (parsed, _) = Response::from_json(&dropped.to_json(None)).unwrap();
        assert_eq!(parsed, dropped);
        let list = Response::Catalog {
            collections: vec![CatalogRow {
                name: "mammals".into(),
                open: true,
                resident_bytes: 4096,
            }],
        };
        let (parsed, _) = Response::from_json(&list.to_json(None)).unwrap();
        assert_eq!(parsed, list);
    }
}
