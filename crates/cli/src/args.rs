//! A small hand-rolled argument parser.
//!
//! The tool takes `--key value` pairs and boolean `--flag`s after a
//! subcommand; nothing here warrants an external dependency. Unknown keys
//! are errors — silently ignored typos in experiment scripts produce wrong
//! tables.

use std::collections::BTreeMap;

/// Parsed `--key value` options and `--flag`s for one subcommand.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse raw arguments (everything after the subcommand).
    ///
    /// `flag_names` lists the boolean options; every other `--key` consumes
    /// the following token as its value.
    pub fn parse(raw: &[String], flag_names: &[&str]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {tok:?}"));
            };
            if flag_names.contains(&key) {
                out.flags.push(key.to_string());
            } else {
                let Some(value) = it.next() else {
                    return Err(format!("option --{key} needs a value"));
                };
                if out.values.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("option --{key} given twice"));
                }
            }
        }
        Ok(out)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional parsed option.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.values.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("cannot parse --{key} value {v:?}")),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Error if any option was not consumed by the caller.
    pub fn reject_unknown(
        &self,
        known_values: &[&str],
        known_flags: &[&str],
    ) -> Result<(), String> {
        for k in self.values.keys() {
            if !known_values.contains(&k.as_str()) {
                return Err(format!("unknown option --{k}"));
            }
        }
        for f in &self.flags {
            if !known_flags.contains(&f.as_str()) {
                return Err(format!("unknown flag --{f}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = Args::parse(
            &raw(&["--refs", "r.nwk", "--strict", "--threads", "4"]),
            &["strict"],
        )
        .unwrap();
        assert_eq!(a.require("refs").unwrap(), "r.nwk");
        assert!(a.flag("strict"));
        assert_eq!(a.get_parsed::<usize>("threads").unwrap(), Some(4));
        assert_eq!(a.get("missing"), None);
        assert!(!a.flag("halved"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&raw(&["positional"]), &[]).is_err());
        assert!(Args::parse(&raw(&["--key"]), &[]).is_err(), "value missing");
        assert!(
            Args::parse(&raw(&["--k", "1", "--k", "2"]), &[]).is_err(),
            "duplicate"
        );
    }

    #[test]
    fn missing_required_and_bad_parse() {
        let a = Args::parse(&raw(&["--threads", "four"]), &[]).unwrap();
        assert!(a.require("refs").is_err());
        assert!(a.get_parsed::<usize>("threads").is_err());
    }

    #[test]
    fn unknown_detection() {
        let a = Args::parse(&raw(&["--refs", "x", "--oops", "1"]), &[]).unwrap();
        assert!(a.reject_unknown(&["refs"], &[]).is_err());
        assert!(a.reject_unknown(&["refs", "oops"], &[]).is_ok());
    }
}
