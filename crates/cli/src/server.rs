//! The `bfhrf serve` daemon: newline-delimited JSON over TCP, wire
//! protocol v2.
//!
//! # Protocol
//!
//! One request per line, one response per line, UTF-8 JSON both ways; the
//! typed surface (ops, payloads, error codes, versions) lives in
//! [`crate::proto`] and is shared with the `bfhrf query` client. A
//! connection may carry any number of requests, and any number may be in
//! flight at once (pipelining) — responses always come back in request
//! order. Version-1 frames (no `"v"` member) are the exact dialect the
//! pre-v2 daemon spoke and keep working unchanged; v2 adds the `hello`
//! handshake, the `batch` op, and optional `id` correlation:
//!
//! ```text
//! → {"v":2,"op":"hello"}
//! ← {"ok":true,"v":2,"max_batch":4096}
//! → {"v":2,"op":"batch","id":1,"queries":["((A,B),(C,D));",...]}
//! ← {"ok":true,"id":1,"n_taxa":4,"generation":0,"snap":0,"scores":[...],"notes":[]}
//! → {"op":"avgrf","queries":["((A,B),(C,D));"]}              (v1 dialect)
//! ← {"ok":true,"n_taxa":4,"generation":0,"snap":0,"scores":[...],"notes":[]}
//! → {"op":"stats"}  /  {"op":"add","trees":[...]}  /  {"op":"compact"}
//! → {"op":"shutdown"}
//! ← {"ok":true,"shutdown":true}
//! ```
//!
//! Failures: `{"ok":false,"code":"error"|"budget"|"busy","outcome":
//! "error"|"budget"|"cancelled"|"busy","error":"..."}` — the `budget`
//! code marks per-request resource refusals (`--mem-budget`,
//! `--timeout-ms`), which clients map to exit code 3; `busy` marks a
//! connection shed at the slot ceiling and is safe to retry after a
//! backoff. Score responses carry the `generation` and `snap` of the
//! snapshot that answered: every row of a `batch` comes from **one**
//! snapshot, even if an admin mutation lands mid-batch. The v2 `ping` op
//! answers a health summary (generation, WAL depth, uptime) without ever
//! taking the admin lock, so it stays responsive under mutation load.
//!
//! # Connection engine
//!
//! One acceptor thread owns the listener and hands each accepted socket to
//! its own scoped handler thread, bounded by a slot count (`--threads`).
//! When every slot is taken the daemon **sheds** the excess connection
//! with a typed `busy` frame and closes it — overload is a loud, typed,
//! retryable signal instead of unbounded queueing behind a parked
//! acceptor. Each handler owns a per-connection arena — read
//! buffer, write buffer, and a reusable [`BipartitionScratch`] — so the
//! steady-state request path allocates nothing for parsing or split
//! extraction. Responses are buffered and only flushed when the connection
//! has no further complete frame already readable, which collapses a
//! pipelined burst of N requests into ~one write syscall (depth is
//! recorded in `serve_pipeline_depth`).
//!
//! Queries run on an immutable `Arc` snapshot of the hash, pre-frozen into
//! the probe-optimized [`bfhrf::FrozenBfh`] layout once per publication: a
//! reader takes the snapshot lock only long enough to clone the `Arc`, so
//! queries never block behind an admin mutation — writers
//! (`add`/`remove`/`compact`) mutate the [`Index`] under its own mutex,
//! then publish a fresh [`QueryView`]. In-flight requests keep answering
//! from the view they started with.
//!
//! Shutdown does not poll and does not need the old
//! one-connection-per-worker unpark hack: the shutdown path half-closes
//! every registered connection (blocked readers wake with EOF), notifies
//! the slot condvar, and makes a single wake connection to unpark the
//! acceptor. The drain is graceful: a half-closed reader first exhausts
//! the complete frames already buffered in its `BufReader`, so a
//! pipelined client gets an answer for every frame the server had
//! received before the half-close, then a clean EOF.
//!
//! A poisoned lock (a handler thread panicked while holding it) is
//! recovered, not propagated: the guarded structures stay consistent
//! across panics (mutations roll back; publications are whole-`Arc`
//! swaps), so the daemon counts the event in
//! `serve_lock_recoveries_total` and keeps serving instead of cascading
//! the panic into every other connection.

use crate::json::Json;
use crate::proto::{
    self, CatalogRow, Envelope, ErrorCode, Op, Outcome, Request, Response, ScoreRow, StatsBody,
    WireEncoding, MAX_BATCH, PROTO_VERSION,
};
use crate::{CliError, EXIT_BUDGET, EXIT_ERROR};
use bfhrf::{Comparator, CoreError, FrozenComparator, RunBudget, RunGuard};
use phylo::{parse_newick_readonly, BipartitionScratch, TaxonSet, Tree};
use phylo_index::{Catalog, Index, PinnedCollection, QueryView, DEFAULT_COLLECTION};
use phylo_obs::{expose, Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Longest accepted request line (bytes) — bounds what a hostile client
/// can make a handler buffer.
const MAX_REQUEST_BYTES: usize = 32 << 20;
/// A connection that sends nothing for this long is dropped, so an idle
/// client cannot pin a connection slot forever. Also the socket read
/// timeout — reads block the full window (shutdown interrupts them through
/// the connection registry, not by polling).
const IDLE_TIMEOUT: Duration = Duration::from_secs(300);
/// Requests with at most this many queries score sequentially on the
/// handler thread through the connection arena; larger ones fan out on the
/// shared rayon pool. Small enough that concurrent connections don't fight
/// over the pool for everyday requests.
const PARALLEL_QUERY_THRESHOLD: usize = 8;
/// Per-connection socket buffer sizes. Batch frames run to hundreds of
/// kilobytes (64 insect-preset queries ≈ 430 KB), so the stock 8 KB
/// `BufReader` would cost ~50 read syscalls per frame; 128 KB keeps that
/// in the single digits. The write side carries ~5 KB score frames —
/// 64 KB lets a pipelined burst of responses coalesce into one flush.
const CONN_READ_BUF: usize = 128 << 10;
const CONN_WRITE_BUF: usize = 64 << 10;

/// Everything `bfhrf serve` needs to come up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Index directory (created by `bfhrf index build`).
    pub index_dir: PathBuf,
    /// Bind address, e.g. `127.0.0.1:4077` (`:0` picks a free port).
    pub addr: String,
    /// Maximum concurrent connections (each gets its own handler thread).
    pub threads: usize,
    /// Per-request allocation budget in bytes. Doubles as the catalog's
    /// open-collection pool budget when `catalog_dir` is set.
    pub mem_budget: Option<usize>,
    /// Per-request deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Catalog root for multi-collection serving (`--catalog`). `None`
    /// hosts only the default index, exactly like the pre-catalog daemon.
    pub catalog_dir: Option<PathBuf>,
}

/// The immutable state queries read: a [`QueryView`] (frozen hash + taxa +
/// generation) plus this daemon's monotone swap id, published atomically
/// as a unit. `generation` only moves on compaction; `snap` bumps on every
/// publication, so a batch can prove "one snapshot" even across
/// non-compacting mutations.
struct SnapView {
    view: QueryView,
    snap: u64,
}

/// Metric handles the daemon touches per request, resolved once at bind
/// time so the request path never takes the registry lock. Every
/// op × outcome series is pre-registered, which also pins the `stats`
/// schema: all combinations appear (zero-valued) from the first snapshot.
struct ServeMetrics {
    latency: [Histogram; Op::ALL.len()],
    outcomes: [[Counter; Outcome::ALL.len()]; Op::ALL.len()],
    admin_wait: Histogram,
    snap_wait: Histogram,
    batch_size: Histogram,
    pipeline_depth: Histogram,
    conns_active: Gauge,
    conns_total: Counter,
    swaps: Counter,
    busy_rejections: Counter,
    lock_recoveries: Counter,
    /// Tree-payload frames by negotiated encoding.
    wire_frames: [Counter; WireEncoding::ALL.len()],
    /// Time turning one frame's tree payloads into [`Tree`]s (Newick parse
    /// or binary decode), by encoding.
    wire_decode: [Histogram; WireEncoding::ALL.len()],
    /// Time encoding trees for the wire, by encoding. The daemon never
    /// encodes tree payloads itself — the series is pre-registered so the
    /// `stats` schema is the same one the client-side tooling records into.
    #[allow(dead_code)]
    wire_encode: [Histogram; WireEncoding::ALL.len()],
}

impl ServeMetrics {
    fn resolve() -> ServeMetrics {
        let reg = phylo_obs::global();
        ServeMetrics {
            latency: std::array::from_fn(|i| {
                reg.histogram("serve_request_ns", &[("op", Op::ALL[i].name())])
            }),
            outcomes: std::array::from_fn(|i| {
                std::array::from_fn(|j| {
                    reg.counter(
                        "serve_requests_total",
                        &[
                            ("op", Op::ALL[i].name()),
                            ("outcome", Outcome::ALL[j].as_str()),
                        ],
                    )
                })
            }),
            admin_wait: reg.histogram("serve_queue_wait_ns", &[("lock", "admin")]),
            snap_wait: reg.histogram("serve_queue_wait_ns", &[("lock", "snapshot")]),
            batch_size: reg.histogram("serve_batch_size", &[]),
            pipeline_depth: reg.histogram("serve_pipeline_depth", &[]),
            conns_active: reg.gauge("serve_connections_active", &[]),
            conns_total: reg.counter("serve_connections_total", &[]),
            swaps: reg.counter("serve_snapshot_swaps_total", &[]),
            busy_rejections: reg.counter("serve_busy_rejections_total", &[]),
            lock_recoveries: reg.counter("serve_lock_recoveries_total", &[]),
            wire_frames: std::array::from_fn(|i| {
                reg.counter(
                    "wire_frames_total",
                    &[("encoding", WireEncoding::ALL[i].as_str())],
                )
            }),
            wire_decode: std::array::from_fn(|i| {
                reg.histogram(
                    "wire_decode_ns",
                    &[("encoding", WireEncoding::ALL[i].as_str())],
                )
            }),
            wire_encode: std::array::from_fn(|i| {
                reg.histogram(
                    "wire_encode_ns",
                    &[("encoding", WireEncoding::ALL[i].as_str())],
                )
            }),
        }
    }

    fn count(&self, op: Op, outcome: Outcome) {
        self.outcomes[op.index()][Outcome::ALL.iter().position(|&o| o == outcome).unwrap_or(1)]
            .inc();
    }
}

/// Connection-slot bookkeeping. The acceptor claims a slot per accepted
/// socket and sheds the connection with a typed `busy` frame when none is
/// free; handlers return their slot (and notify) on exit. The condvar
/// remains for anything parked on slot availability (tests, future
/// waiters) and is notified by the shutdown path.
struct ConnSlots {
    free: Mutex<usize>,
    freed: Condvar,
}

struct ServeState {
    snap: RwLock<Arc<SnapView>>,
    admin: Mutex<Index>,
    shutdown: AtomicBool,
    served: AtomicU64,
    /// When the listener came up, for `ping` uptime.
    started: Instant,
    /// WAL records since the last compaction, mirrored out of the admin
    /// index on every mutation so `ping` never queues behind admin work.
    wal_pending: AtomicU64,
    mem_budget: Option<usize>,
    timeout_ms: Option<u64>,
    /// Live connections by id; shutdown walks this and half-closes each
    /// socket so blocked readers wake immediately.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Monotone snapshot-publication counter (`snap` in score responses).
    snap_seq: AtomicU64,
    slots: ConnSlots,
    /// Configured slot ceiling (`--threads`), reported in `busy` frames.
    max_conns: usize,
    /// The multi-collection catalog, when the daemon was started with
    /// `--catalog`. Resolution and admin run under this mutex; scoring
    /// runs against per-collection cells after it is released.
    catalog: Option<Mutex<Catalog>>,
    /// Catalog size and open-pool size, mirrored out of the catalog on
    /// every catalog-touching op so v2 `ping` stays lock-free.
    catalog_size: AtomicU64,
    catalog_open: AtomicU64,
    metrics: ServeMetrics,
}

/// Where a request's index ops land: the daemon's default index (the
/// legacy single-index paths, byte-for-byte unchanged) or a pinned
/// catalog collection. The pin lives as long as the target, so a
/// collection serving an in-flight request is never evicted.
enum Target {
    Default,
    Named(PinnedCollection),
}

/// Recover a possibly-poisoned lock guard. Poison means some handler
/// panicked while holding the lock; every structure we guard stays
/// consistent across a panic (index mutations validate up front and roll
/// back on failure, snapshot publication is a whole-`Arc` swap, the slot
/// count and connection registry are single-statement updates), so the
/// right move is to count the event and keep the daemon serving — one
/// connection dies with the panic, not all of them.
fn recover_lock<G>(state: &ServeState, result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(|poisoned| {
        state.metrics.lock_recoveries.inc();
        poisoned.into_inner()
    })
}

/// Lock the admin mutex, recording how long the request queued behind
/// other admin work.
fn lock_admin(state: &ServeState) -> MutexGuard<'_, Index> {
    let start = Instant::now();
    let guard = recover_lock(state, state.admin.lock());
    state.metrics.admin_wait.record_duration(start.elapsed());
    guard
}

/// Registry entry for one connection, deregistered on drop (any exit path
/// from `handle_connection`).
struct ConnGuard<'a> {
    state: &'a ServeState,
    id: u64,
}

impl<'a> ConnGuard<'a> {
    fn register(state: &'a ServeState, stream: &TcpStream) -> Option<ConnGuard<'a>> {
        let handle = stream.try_clone().ok()?;
        let id = state.next_conn.fetch_add(1, Ordering::Relaxed);
        recover_lock(state, state.conns.lock()).insert(id, handle);
        state.metrics.conns_total.inc();
        state.metrics.conns_active.add(1);
        Some(ConnGuard { state, id })
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.state.metrics.conns_active.sub(1);
        recover_lock(self.state, self.state.conns.lock()).remove(&self.id);
    }
}

/// Half-close every registered connection: readers parked in `read` get
/// EOF at once instead of waiting out a poll interval.
fn interrupt_connections(state: &ServeState) {
    let conns = recover_lock(state, state.conns.lock());
    for stream in conns.values() {
        let _ = stream.shutdown(Shutdown::Read);
    }
}

/// Flip the shutdown flag and wake everything that might be parked: blocked
/// connection readers (half-close → EOF), the acceptor waiting on a free
/// slot (condvar), and the acceptor parked in `accept` (one wake
/// connection — the single replacement for the old 64-connection hack).
fn begin_shutdown(state: &ServeState, addr: SocketAddr) {
    state.shutdown.store(true, Ordering::SeqCst);
    interrupt_connections(state);
    // Lock-then-notify so the acceptor cannot check the flag and park
    // between our store and our notify.
    drop(state.slots.free.lock());
    state.slots.freed.notify_all();
    drop(TcpStream::connect_timeout(
        &addr,
        Duration::from_millis(200),
    ));
}

/// A typed request failure on the server side: the outcome label metrics
/// use, plus the message. The wire code derives from the outcome
/// (`cancelled`/`budget` → `budget`).
struct ReqError {
    outcome: Outcome,
    message: String,
}

impl ReqError {
    fn new(message: impl Into<String>) -> Self {
        ReqError {
            outcome: Outcome::Error,
            message: message.into(),
        }
    }

    fn from_core(e: CoreError) -> Self {
        let outcome = match e {
            CoreError::Cancelled(_) => Outcome::Cancelled,
            CoreError::ResourceLimit(_) => Outcome::Budget,
            _ => Outcome::Error,
        };
        ReqError {
            outcome,
            message: e.to_string(),
        }
    }

    fn from_index(e: phylo_index::IndexError) -> Self {
        match e {
            phylo_index::IndexError::Core(c) => ReqError::from_core(c),
            other => ReqError::new(other.to_string()),
        }
    }

    fn into_response(self) -> Response {
        Response::Error {
            code: self.outcome.code(),
            outcome: self.outcome,
            message: self.message,
        }
    }
}

enum Action {
    Continue,
    Shutdown,
}

/// A bound, not-yet-running daemon: lets callers learn the OS-assigned
/// port (and write a `--port-file`) before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    addr: SocketAddr,
}

impl Server {
    /// Open the index and bind the listener.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, CliError> {
        let mut index = Index::open(&cfg.index_dir).map_err(crate::index_fail)?;
        let wal_pending = index.stats().wal_pending as u64;
        let snap = Arc::new(SnapView {
            view: index.view(),
            snap: 0,
        });
        // Opening the catalog at bind also pre-registers every
        // per-collection obs cell, so the full metrics matrix is visible
        // from the first scrape.
        let catalog = match &cfg.catalog_dir {
            None => None,
            Some(dir) => Some(Catalog::open(dir, cfg.mem_budget).map_err(crate::index_fail)?),
        };
        let catalog_size = catalog.as_ref().map_or(0, Catalog::len) as u64;
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| CliError::from(format!("cannot bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CliError::from(format!("cannot resolve bound address: {e}")))?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                snap: RwLock::new(snap),
                admin: Mutex::new(index),
                shutdown: AtomicBool::new(false),
                served: AtomicU64::new(0),
                started: Instant::now(),
                wal_pending: AtomicU64::new(wal_pending),
                mem_budget: cfg.mem_budget,
                timeout_ms: cfg.timeout_ms,
                conns: Mutex::new(HashMap::new()),
                next_conn: AtomicU64::new(0),
                snap_seq: AtomicU64::new(0),
                slots: ConnSlots {
                    free: Mutex::new(cfg.threads.max(1)),
                    freed: Condvar::new(),
                },
                max_conns: cfg.threads.max(1),
                catalog: catalog.map(Mutex::new),
                catalog_size: AtomicU64::new(catalog_size),
                catalog_open: AtomicU64::new(0),
                metrics: ServeMetrics::resolve(),
            }),
            addr,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Run the accept loop until a `shutdown` request lands. Returns the
    /// number of requests served.
    pub fn run(self) -> Result<u64, CliError> {
        let Server {
            listener,
            state,
            addr,
        } = self;
        std::thread::scope(|scope| {
            let mut conn_seq = 0u64;
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        if !try_take_slot(&state) {
                            shed_busy(&state, stream);
                            continue;
                        }
                        conn_seq += 1;
                        let spawned = std::thread::Builder::new()
                            .name(format!("bfhrf-conn-{conn_seq}"))
                            .spawn_scoped(scope, {
                                let state = Arc::clone(&state);
                                move || {
                                    handle_connection(stream, &state, addr);
                                    release_slot(&state);
                                }
                            });
                        if spawned.is_err() {
                            // Thread exhaustion is an overload signal like a
                            // full slot table: shed loudly, keep accepting.
                            release_slot(&state);
                            shed_busy_unregistered(&state);
                        }
                    }
                    Err(_) => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            // The scope join waits for live handlers; they have all been
            // interrupted by begin_shutdown and exit once they drain the
            // frames already buffered on their connection.
        });
        Ok(state.served.load(Ordering::Relaxed))
    }
}

/// Claim a connection slot without blocking. `false` means every slot is
/// taken and the caller should shed the connection.
fn try_take_slot(state: &ServeState) -> bool {
    let mut free = recover_lock(state, state.slots.free.lock());
    if *free == 0 {
        return false;
    }
    *free -= 1;
    true
}

fn release_slot(state: &ServeState) {
    let mut free = recover_lock(state, state.slots.free.lock());
    *free += 1;
    drop(free);
    state.slots.freed.notify_one();
}

/// Refuse a connection at the slot ceiling: answer one typed `busy` frame
/// (bounded write so a stalled peer cannot wedge the acceptor) and close.
/// A retrying client backs off and reconnects; an old client reports the
/// error and exits 1.
fn shed_busy(state: &ServeState, stream: TcpStream) {
    state.metrics.busy_rejections.inc();
    state.metrics.count(Op::Unknown, Outcome::Busy);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let resp = Response::Error {
        code: ErrorCode::Busy,
        outcome: Outcome::Busy,
        message: format!(
            "server is at its connection ceiling ({} slots); retry after a backoff",
            state.max_conns
        ),
    };
    let mut stream = stream;
    let _ = writeln!(stream, "{}", resp.to_json(None));
    // Half-close and drain what the peer already sent instead of closing
    // outright: closing with unread request bytes in the receive buffer
    // makes the kernel send RST, which can discard the busy frame before
    // the client reads it. The read timeout bounds a peer that never
    // closes.
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Count a shed that happened before we had a socket worth answering on
/// (handler-thread spawn failure).
fn shed_busy_unregistered(state: &ServeState) {
    state.metrics.busy_rejections.inc();
    state.metrics.count(Op::Unknown, Outcome::Busy);
}

enum LineRead {
    /// `buf` holds one complete request line (newline stripped).
    Line,
    /// The peer closed the connection cleanly.
    Eof,
    /// Shutdown, idle timeout, oversize line, or a socket error.
    Close,
}

/// Read one newline-terminated request. The read blocks up to
/// [`IDLE_TIMEOUT`]; shutdown interrupts it through the connection
/// registry (the socket half-closes and the read returns EOF), so there is
/// no polling interval to wait out. Partial bytes accumulate in `buf`
/// across reads — a slow sender loses nothing, and a frame split across
/// TCP segments is reassembled transparently.
///
/// Shutdown drains gracefully: complete frames already sitting in the
/// `BufReader` are still returned (a pipelined client gets an answer for
/// everything the server had received), and only then does the
/// connection close.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    state: &ServeState,
) -> LineRead {
    buf.clear();
    let start = Instant::now();
    loop {
        if state.shutdown.load(Ordering::SeqCst) && !reader.buffer().contains(&b'\n') {
            return LineRead::Close;
        }
        match reader.fill_buf() {
            Ok([]) => return LineRead::Eof,
            Ok(avail) => {
                if let Some(pos) = avail.iter().position(|&b| b == b'\n') {
                    buf.extend_from_slice(&avail[..pos]);
                    reader.consume(pos + 1);
                    return LineRead::Line;
                }
                let n = avail.len();
                buf.extend_from_slice(avail);
                reader.consume(n);
                if buf.len() > MAX_REQUEST_BYTES {
                    return LineRead::Close;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if start.elapsed() > IDLE_TIMEOUT {
                    return LineRead::Close;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Close,
        }
    }
}

/// The per-connection loop: read frames, dispatch, write responses in
/// order, deferring the socket flush while more complete frames are
/// already buffered (pipelining).
fn handle_connection(stream: TcpStream, state: &ServeState, addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => BufWriter::with_capacity(CONN_WRITE_BUF, w),
        Err(_) => return,
    };
    let Some(_conn_guard) = ConnGuard::register(state, &stream) else {
        return;
    };
    let mut reader = BufReader::with_capacity(CONN_READ_BUF, stream);
    // The connection arena: request-line buffer and bipartition extraction
    // scratch, reused for every request this connection ever sends.
    let mut buf = Vec::new();
    let mut scratch = BipartitionScratch::new();
    // Tree-payload encoding for this connection, switched by a `hello`
    // carrying an `encoding` member. Frames are handled strictly in
    // order, so the switch cleanly splits the stream: everything after
    // the hello is read under the new encoding.
    let mut encoding = WireEncoding::Newick;
    let mut depth = 0u64; // responses written since the last flush
    loop {
        match read_request_line(&mut reader, &mut buf, state) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::Close => return,
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (response, action) = handle_request(line, state, &mut scratch, &mut encoding);
        state.served.fetch_add(1, Ordering::Relaxed);
        if writeln!(writer, "{response}").is_err() {
            return;
        }
        depth += 1;
        let shutting_down = matches!(action, Action::Shutdown);
        // Flush only when no further complete frame is already buffered:
        // a pipelined burst of N requests costs ~one flush, a lone
        // request-response exchange flushes immediately as before.
        if shutting_down || !reader.buffer().contains(&b'\n') {
            state.metrics.pipeline_depth.record(depth);
            depth = 0;
            if writer.flush().is_err() {
                return;
            }
        }
        if shutting_down {
            begin_shutdown(state, addr);
            return;
        }
    }
}

fn request_guard(state: &ServeState) -> RunGuard {
    RunGuard::with_budget(RunBudget {
        max_bytes: state.mem_budget,
        deadline: state
            .timeout_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms)),
    })
}

/// Parse the request's Newick payloads against a frozen namespace (unknown
/// labels are request errors, not namespace growth). Read-only resolution:
/// no per-request namespace clone. `base` offsets the tree index in error
/// messages when parsing a chunk of a larger batch.
fn parse_payload_trees_from(
    taxa: &TaxonSet,
    items: &[String],
    base: usize,
) -> Result<Vec<Tree>, ReqError> {
    items
        .iter()
        .enumerate()
        .map(|(i, text)| {
            parse_newick_readonly(text, taxa)
                .map_err(|e| ReqError::new(format!("tree {}: {e}", base + i)))
        })
        .collect()
}

/// Decode the request's base64-wrapped binary tree records against a
/// frozen namespace. The records carry server-namespace taxon ids (the
/// client fetched them with the `taxa` op), so decode is a pure structural
/// check — no label resolution at all.
fn decode_payload_trees_from(
    taxa: &TaxonSet,
    items: &[String],
    base: usize,
) -> Result<Vec<Tree>, ReqError> {
    items
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let bytes = phylo_wire::b64::decode(text)
                .map_err(|e| ReqError::new(format!("tree {}: {e}", base + i)))?;
            phylo_wire::decode_tree_exact(&bytes, taxa.len())
                .map_err(|e| ReqError::new(format!("tree {}: {e}", base + i)))
        })
        .collect()
}

/// Turn one chunk of tree payloads into [`Tree`]s under the connection's
/// negotiated encoding, recording the decode time under
/// `wire_decode_ns{encoding}`.
fn payload_trees_chunk(
    state: &ServeState,
    enc: WireEncoding,
    taxa: &TaxonSet,
    items: &[String],
    base: usize,
) -> Result<Vec<Tree>, ReqError> {
    let start = Instant::now();
    let trees = match enc {
        WireEncoding::Newick => parse_payload_trees_from(taxa, items, base),
        WireEncoding::Bin => decode_payload_trees_from(taxa, items, base),
    }?;
    state.metrics.wire_decode[enc.index()].record_duration(start.elapsed());
    Ok(trees)
}

fn payload_trees(
    state: &ServeState,
    enc: WireEncoding,
    taxa: &TaxonSet,
    items: &[String],
) -> Result<Vec<Tree>, ReqError> {
    payload_trees_chunk(state, enc, taxa, items, 0)
}

/// Dispatch one request, recording its latency and outcome under the op
/// label (`unknown` for unparseable requests). This wrapper is the whole
/// query-path instrumentation: one clock pair, one histogram record, one
/// counter bump per request.
fn handle_request(
    line: &str,
    state: &ServeState,
    scratch: &mut BipartitionScratch,
    encoding: &mut WireEncoding,
) -> (Json, Action) {
    let start = Instant::now();
    let (op, id, result) = dispatch(line, state, scratch, encoding);
    state.metrics.latency[op.index()].record_duration(start.elapsed());
    match result {
        Ok((response, action)) => {
            state.metrics.count(op, Outcome::Ok);
            (response.to_json(id), action)
        }
        Err(e) => {
            state.metrics.count(op, e.outcome);
            (e.into_response().to_json(id), Action::Continue)
        }
    }
}

/// Parse the frame through the typed protocol layer and route it to its op
/// handler — the only dispatch point; there is no string matching past
/// [`proto::parse_request`].
fn dispatch(
    line: &str,
    state: &ServeState,
    scratch: &mut BipartitionScratch,
    encoding: &mut WireEncoding,
) -> (Op, Option<u64>, Result<(Response, Action), ReqError>) {
    let env = match proto::parse_request(line) {
        Ok(env) => env,
        Err(e) => return (e.op, None, Err(ReqError::new(e.message))),
    };
    let Envelope {
        version,
        id,
        request,
    } = env;
    let op = request.op();
    // Frames carrying tree payloads count under the encoding they arrive
    // in; the handlers below time their conversion into trees.
    let enc = *encoding;
    if matches!(
        request,
        Request::AvgRf { .. }
            | Request::Batch { .. }
            | Request::BestQuery { .. }
            | Request::Add { .. }
            | Request::Remove { .. }
    ) {
        state.metrics.wire_frames[enc.index()].inc();
    }
    let cont = |r: Result<Response, ReqError>| r.map(|resp| (resp, Action::Continue));
    let result = match request {
        Request::Hello { encoding: wanted } => {
            // The switch takes effect for every later frame on this
            // connection; frames are handled strictly in order, so a
            // pipelined hello splits the stream cleanly. A hello without
            // the member leaves the current encoding alone (and its
            // response stays byte-identical to the pre-encoding frame).
            let echo = wanted.inspect(|e| *encoding = *e);
            Ok((
                Response::Hello {
                    version: PROTO_VERSION,
                    max_batch: MAX_BATCH,
                    encoding: echo,
                },
                Action::Continue,
            ))
        }
        Request::AvgRf {
            queries,
            flags,
            collection,
        } => cont(
            resolve(state, collection.as_deref())
                .and_then(|t| op_scores(state, scratch, enc, &t, &queries, flags)),
        ),
        Request::Batch {
            queries,
            flags,
            collection,
        } => {
            state.metrics.batch_size.record(queries.len() as u64);
            if queries.len() > MAX_BATCH {
                Err(ReqError::new(format!(
                    "batch of {} queries exceeds max_batch {MAX_BATCH} (split it, or ask \
                     \"hello\" for the ceiling)",
                    queries.len()
                )))
            } else {
                cont(
                    resolve(state, collection.as_deref())
                        .and_then(|t| op_scores(state, scratch, enc, &t, &queries, flags)),
                )
            }
        }
        Request::BestQuery {
            queries,
            collection,
        } => cont(
            resolve(state, collection.as_deref())
                .and_then(|t| op_best(state, scratch, enc, &t, &queries)),
        ),
        Request::Ping { collection } => {
            cont(resolve(state, collection.as_deref()).and_then(|t| op_ping(state, version, &t)))
        }
        Request::Stats { collection } => {
            cont(resolve(state, collection.as_deref()).and_then(|t| op_stats(state, &t)))
        }
        Request::Add { trees, collection } => cont(
            resolve(state, collection.as_deref())
                .and_then(|t| op_mutate(state, enc, &t, &trees, true)),
        ),
        Request::Remove { trees, collection } => cont(
            resolve(state, collection.as_deref())
                .and_then(|t| op_mutate(state, enc, &t, &trees, false)),
        ),
        Request::Compact { collection } => {
            cont(resolve(state, collection.as_deref()).and_then(|t| op_compact(state, &t)))
        }
        Request::Taxa { collection } => {
            cont(resolve(state, collection.as_deref()).and_then(|t| op_taxa(state, &t)))
        }
        Request::Xavgrf {
            refs,
            queries,
            flags,
        } => cont(op_xavgrf(state, &refs, &queries, flags)),
        Request::CatalogCreate { name, trees } => cont(op_catalog_create(state, &name, &trees)),
        Request::CatalogDrop { name } => cont(op_catalog_drop(state, &name)),
        Request::CatalogList => cont(op_catalog_list(state)),
        Request::Shutdown => Ok((Response::Shutdown, Action::Shutdown)),
    };
    (op, id, result)
}

/// Lock the daemon's catalog, or explain that it has none.
fn lock_catalog<'a>(
    state: &'a ServeState,
    wanted: &str,
) -> Result<MutexGuard<'a, Catalog>, ReqError> {
    let Some(catalog) = &state.catalog else {
        return Err(ReqError::new(format!(
            "this daemon hosts no catalog (start serve with --catalog to use {wanted})"
        )));
    };
    Ok(recover_lock(state, catalog.lock()))
}

/// Refresh the lock-free catalog mirrors `ping` reads.
fn mirror_catalog(state: &ServeState, cat: &Catalog) {
    state
        .catalog_size
        .store(cat.len() as u64, Ordering::Relaxed);
    state
        .catalog_open
        .store(cat.open_count() as u64, Ordering::Relaxed);
}

/// Resolve a request's routing field: absent or `"default"` is the
/// daemon's default index (the legacy paths, untouched); anything else
/// resolves through the catalog and comes back pinned — the collection
/// stays resident for as long as the returned [`Target`] lives.
fn resolve(state: &ServeState, name: Option<&str>) -> Result<Target, ReqError> {
    match name {
        None => Ok(Target::Default),
        Some(n) if n == DEFAULT_COLLECTION => Ok(Target::Default),
        Some(n) => {
            let mut cat = lock_catalog(state, &format!("collection {n:?}"))?;
            let pin = cat.acquire(n).map_err(ReqError::from_index)?;
            mirror_catalog(state, &cat);
            Ok(Target::Named(pin))
        }
    }
}

/// The scoring view (and snapshot id) a target answers from. The default
/// path clones the published `Arc` exactly as before; a named collection
/// takes its cell lock only long enough to freeze and clone out the view,
/// then scores lock-free — mutations to the same collection publish a new
/// generation, and in-flight scoring keeps the view it started with.
fn target_view(state: &ServeState, target: &Target) -> (QueryView, u64) {
    match target {
        Target::Default => {
            let snap = current_snap(state);
            let view = QueryView {
                frozen: Arc::clone(&snap.view.frozen),
                taxa: Arc::clone(&snap.view.taxa),
                generation: snap.view.generation,
            };
            (view, snap.snap)
        }
        Target::Named(pin) => {
            let mut col = pin.lock();
            let view = col.view();
            let snap = view.generation;
            (view, snap)
        }
    }
}

/// Clone the current snapshot `Arc` out of the cell — the only moment a
/// query touches a lock. The wait is recorded so contention behind
/// publishing writers shows up as `serve_queue_wait_ns{lock=snapshot}`.
fn current_snap(state: &ServeState) -> Arc<SnapView> {
    let start = Instant::now();
    let guard = recover_lock(state, state.snap.read());
    let snap = Arc::clone(&*guard);
    drop(guard);
    state.metrics.snap_wait.record_duration(start.elapsed());
    snap
}

/// Publish the admin index's current state as the new query snapshot.
/// Call with the admin lock held so publications serialize.
fn publish_snap(state: &ServeState, index: &mut Index) {
    let snap = state.snap_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let published = Arc::new(SnapView {
        view: index.view(),
        snap,
    });
    *recover_lock(state, state.snap.write()) = published;
    state.metrics.swaps.inc();
}

/// Degradation notes recorded while serving one request (empty when the
/// run was clean — the array is always present so clients need no
/// existence check).
fn notes_vec(guard: &RunGuard) -> Vec<String> {
    guard.degradations().iter().map(|d| d.to_string()).collect()
}

/// Score `queries` against one snapshot. Small requests run sequentially
/// through the connection arena; large batches fan out on the shared rayon
/// pool (fresh scratch per chunk inside the comparator) — unless the box
/// has a single core, where fan-out is pure overhead on top of the
/// handler threads already competing for it.
fn parallel_scoring(n_queries: usize) -> bool {
    static CORES: OnceLock<usize> = OnceLock::new();
    let cores = *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    n_queries > PARALLEL_QUERY_THRESHOLD && cores > 1
}

fn scored(
    view: &QueryView,
    queries: &[Tree],
    guard: &RunGuard,
    scratch: &mut BipartitionScratch,
) -> Result<Vec<bfhrf::QueryScore>, ReqError> {
    let cmp = FrozenComparator::new(&view.frozen, &view.taxa);
    if parallel_scoring(queries.len()) {
        cmp.parallel(true)
            .average_all_guarded(queries, guard)
            .map_err(ReqError::from_core)
    } else {
        cmp.average_all_scratch_guarded(queries, guard, scratch)
            .map_err(ReqError::from_core)
    }
}

/// `avgrf` and `batch` share this: same scoring, same response shape; the
/// batch op is the explicitly versioned, ceiling-checked form.
fn op_scores(
    state: &ServeState,
    scratch: &mut BipartitionScratch,
    enc: WireEncoding,
    target: &Target,
    queries: &[String],
    flags: proto::QueryFlags,
) -> Result<Response, ReqError> {
    let (view, snap_id) = target_view(state, target);
    let guard = request_guard(state);
    // Sequential scoring walks the batch in small chunks — parse a few
    // trees, score them, reuse the arena — so a 4096-query frame never
    // holds thousands of parsed trees live at once (with many concurrent
    // connections that footprint is real cache pressure). The parallel
    // path keeps the whole batch: rayon wants it all to fan out.
    let scores = if parallel_scoring(queries.len()) {
        let trees = payload_trees(state, enc, &view.taxa, queries)?;
        scored(&view, &trees, &guard, scratch)?
    } else {
        let mut scores = Vec::with_capacity(queries.len());
        for (chunk_idx, chunk) in queries.chunks(PARALLEL_QUERY_THRESHOLD).enumerate() {
            let base = chunk_idx * PARALLEL_QUERY_THRESHOLD;
            let trees = payload_trees_chunk(state, enc, &view.taxa, chunk, base)?;
            let part = scored(&view, &trees, &guard, scratch)?;
            scores.extend(part.into_iter().map(|mut s| {
                s.index += base;
                s
            }));
        }
        scores
    };
    let n_taxa = view.taxa.len();
    let rows = scores
        .iter()
        .map(|s| {
            let mut avg = if flags.normalized {
                bfhrf::variants::normalized_average(&s.rf, n_taxa)
            } else {
                s.rf.average()
            };
            if flags.halved {
                avg /= 2.0;
            }
            ScoreRow {
                index: s.index,
                left: s.rf.left,
                right: s.rf.right,
                n_refs: s.rf.n_refs,
                avg,
            }
        })
        .collect();
    Ok(Response::Scores {
        n_taxa,
        generation: view.generation,
        snap: snap_id,
        scores: rows,
        notes: notes_vec(&guard),
    })
}

fn op_best(
    state: &ServeState,
    scratch: &mut BipartitionScratch,
    enc: WireEncoding,
    target: &Target,
    queries: &[String],
) -> Result<Response, ReqError> {
    let (view, _snap_id) = target_view(state, target);
    let guard = request_guard(state);
    let trees = payload_trees(state, enc, &view.taxa, queries)?;
    let scores = scored(&view, &trees, &guard, scratch)?;
    let best = bfhrf::best_query(&scores)
        .ok_or_else(|| ReqError::new("the \"queries\" array is empty"))?;
    Ok(Response::Best {
        best_index: best.index,
        avg: best.rf.average(),
        total: best.rf.total(),
        notes: notes_vec(&guard),
    })
}

/// The catalog members of a v2 `pong`. The default index always counts as
/// one hosted, one open collection; the catalog adds its mirrors on top.
/// v1 frames get `None` — the v1 pong shape is byte-identical.
fn pong_catalog_fields(state: &ServeState, version: u32) -> (Option<u64>, Option<u64>) {
    if version < 2 {
        return (None, None);
    }
    match &state.catalog {
        None => (Some(1), Some(1)),
        Some(_) => (
            Some(1 + state.catalog_size.load(Ordering::Relaxed)),
            Some(1 + state.catalog_open.load(Ordering::Relaxed)),
        ),
    }
}

/// Health probe: the default path is answered from the published snapshot
/// and mirrored atomics only, so it never queues behind admin mutations —
/// a load balancer polling `ping` sees liveness, not lock contention. A
/// collection-routed ping reports that collection's generation and WAL
/// depth instead (its cell lock, never the admin lock).
fn op_ping(state: &ServeState, version: u32, target: &Target) -> Result<Response, ReqError> {
    let (generation, wal_pending) = match target {
        Target::Default => {
            let snap = current_snap(state);
            (
                snap.view.generation,
                state.wal_pending.load(Ordering::Relaxed),
            )
        }
        Target::Named(pin) => {
            let col = pin.lock();
            (col.generation(), col.wal_pending() as u64)
        }
    };
    let (collections, open_collections) = pong_catalog_fields(state, version);
    Ok(Response::Pong {
        generation,
        wal_pending,
        uptime_ms: state.started.elapsed().as_millis() as u64,
        collections,
        open_collections,
    })
}

/// The collection's taxon labels in intern order — the id namespace a
/// binary-encoding client must remap into before encoding tree records.
/// Answered from the published snapshot, so it never queues behind admin
/// work; the generation lets a client detect that its cached mapping and a
/// later frame straddled a rebuild.
fn op_taxa(state: &ServeState, target: &Target) -> Result<Response, ReqError> {
    let (view, _snap_id) = target_view(state, target);
    let labels = (0..view.taxa.len())
        .map(|i| view.taxa.label(phylo::TaxonId(i as u32)).to_string())
        .collect();
    Ok(Response::Taxa {
        generation: view.generation,
        labels,
    })
}

fn op_stats(state: &ServeState, target: &Target) -> Result<Response, ReqError> {
    let stats = match target {
        Target::Default => {
            // Index::stats also refreshes the index_generation /
            // index_wal_pending gauges, so the metrics snapshot below
            // reflects this very answer.
            let stats = lock_admin(state).stats();
            state
                .wal_pending
                .store(stats.wal_pending as u64, Ordering::Relaxed);
            stats
        }
        Target::Named(pin) => pin.lock().stats(),
    };
    let metrics = expose::to_json(&phylo_obs::global().snapshot());
    Ok(Response::Stats {
        body: StatsBody {
            generation: stats.generation,
            n_trees: stats.n_trees,
            n_taxa: stats.n_taxa,
            distinct: stats.distinct,
            sum: stats.sum,
            wal_pending: stats.wal_pending,
            served: state.served.load(Ordering::Relaxed),
        },
        metrics,
    })
}

fn op_mutate(
    state: &ServeState,
    enc: WireEncoding,
    target: &Target,
    items: &[String],
    add: bool,
) -> Result<Response, ReqError> {
    if let Target::Named(pin) = target {
        // Per-collection mutations go through the Collection wrapper so the
        // hash and the tree-list sidecar move in lockstep (same up-front
        // validation and remove dry-run as the default path). The wrapper
        // keeps a Newick tree-list sidecar, so binary payloads are decoded
        // and re-rendered as Newick before entering it.
        let mut col = pin.lock();
        let rendered;
        let items: &[String] = match enc {
            WireEncoding::Newick => items,
            WireEncoding::Bin => {
                let view = col.view();
                let trees = payload_trees(state, enc, &view.taxa, items)?;
                rendered = trees
                    .iter()
                    .map(|t| phylo::write_newick(t, &view.taxa))
                    .collect::<Vec<_>>();
                &rendered
            }
        };
        let applied = if add {
            col.add_batch(items)
        } else {
            col.remove_batch(items)
        }
        .map_err(ReqError::from_index)?;
        let n_trees = col.stats().n_trees;
        pin.cell().publish_obs(&mut col);
        return Ok(Response::Applied { applied, n_trees });
    }
    let mut index = lock_admin(state);
    // Validate the whole batch against the namespace up front so a typo in
    // tree k does not leave trees 0..k applied.
    let trees = payload_trees(state, enc, index.taxa(), items)?;
    if !add {
        // remove_tree is verify-then-mutate per tree, but a batch can still
        // fail halfway; dry-run the batch on a scratch hash first.
        let mut probe = index.bfh().clone();
        let taxa = index.taxa().clone();
        for (i, tree) in trees.iter().enumerate() {
            probe
                .remove_tree(tree, &taxa)
                .map_err(|e| ReqError::new(format!("tree {i}: {e}")))?;
        }
    }
    let mut applied = 0usize;
    for tree in &trees {
        // A binary session's mutations land in the WAL as binary records
        // too — no Newick re-rendering on the hot admin path.
        let r = match (add, enc) {
            (true, WireEncoding::Newick) => index.append_add(tree),
            (false, WireEncoding::Newick) => index.append_remove(tree),
            (true, WireEncoding::Bin) => index.append_add_bin(tree),
            (false, WireEncoding::Bin) => index.append_remove_bin(tree),
        };
        r.map_err(ReqError::from_index)?;
        applied += 1;
    }
    // Publish the mutated hash for queries, frozen once for this
    // publication; in-flight readers keep their old view alive, so every
    // batch still answers from a single snapshot.
    publish_snap(state, &mut index);
    let stats = index.stats();
    state
        .wal_pending
        .store(stats.wal_pending as u64, Ordering::Relaxed);
    Ok(Response::Applied {
        applied,
        n_trees: stats.n_trees,
    })
}

fn op_compact(state: &ServeState, target: &Target) -> Result<Response, ReqError> {
    if let Target::Named(pin) = target {
        let mut col = pin.lock();
        let meta = col.compact().map_err(ReqError::from_index)?;
        pin.cell().publish_obs(&mut col);
        return Ok(Response::Compacted {
            generation: meta.generation,
            distinct: meta.distinct,
            wal_pending: 0,
        });
    }
    let mut index = lock_admin(state);
    let meta = index.compact().map_err(ReqError::from_index)?;
    // The hash contents are unchanged, but the generation moved; publish
    // so score responses report the new generation.
    publish_snap(state, &mut index);
    state.wal_pending.store(0, Ordering::Relaxed);
    Ok(Response::Compacted {
        generation: meta.generation,
        distinct: meta.distinct,
        wal_pending: 0,
    })
}

/// Cross-collection RF: score collection `queries`' trees against
/// collection `refs` via restriction to their common taxa
/// ([`bfhrf::variable_taxa::common_taxa_rf`]). Both collections must come
/// from the catalog — the default index keeps only its hash, not its
/// trees. Both are pinned for the duration, so neither can be evicted
/// mid-computation; their cell locks are taken one at a time (extract the
/// tree list, release), never nested.
fn op_xavgrf(
    state: &ServeState,
    refs_name: &str,
    queries_name: &str,
    flags: proto::QueryFlags,
) -> Result<Response, ReqError> {
    let named = |name: &str| -> Result<Target, ReqError> {
        if name == DEFAULT_COLLECTION {
            return Err(ReqError::new(
                "xavgrf needs catalog collections on both sides: the default index does not \
                 retain its trees",
            ));
        }
        resolve(state, Some(name))
    };
    let refs_pin = named(refs_name)?;
    let queries_pin = named(queries_name)?;
    let tree_list = |t: &Target| match t {
        Target::Named(pin) => pin.lock().tree_collection().map_err(ReqError::from_index),
        Target::Default => unreachable!("named() refuses the default collection"),
    };
    let refs_tc = tree_list(&refs_pin)?;
    let queries_tc = tree_list(&queries_pin)?;
    let out =
        bfhrf::variable_taxa::common_taxa_rf(&refs_tc, &queries_tc).map_err(ReqError::from_core)?;
    let n_taxa = out.taxa.len();
    let rows = out
        .scores
        .iter()
        .map(|s| {
            let mut avg = if flags.normalized {
                bfhrf::variants::normalized_average(&s.rf, n_taxa)
            } else {
                s.rf.average()
            };
            if flags.halved {
                avg /= 2.0;
            }
            ScoreRow {
                index: s.index,
                left: s.rf.left,
                right: s.rf.right,
                n_refs: s.rf.n_refs,
                avg,
            }
        })
        .collect();
    Ok(Response::XScores {
        common_taxa: n_taxa,
        scores: rows,
        notes: Vec::new(),
    })
}

fn op_catalog_create(
    state: &ServeState,
    name: &str,
    trees: &[String],
) -> Result<Response, ReqError> {
    let mut cat = lock_catalog(state, "catalog-create")?;
    let n_trees = cat
        .create(name, &trees.join("\n"))
        .map_err(ReqError::from_index)?;
    mirror_catalog(state, &cat);
    Ok(Response::Created {
        name: name.to_string(),
        n_trees,
    })
}

fn op_catalog_drop(state: &ServeState, name: &str) -> Result<Response, ReqError> {
    let mut cat = lock_catalog(state, "catalog-drop")?;
    cat.drop_collection(name).map_err(ReqError::from_index)?;
    mirror_catalog(state, &cat);
    Ok(Response::Dropped {
        name: name.to_string(),
    })
}

fn op_catalog_list(state: &ServeState) -> Result<Response, ReqError> {
    let cat = lock_catalog(state, "catalog-list")?;
    let collections = cat
        .list()
        .into_iter()
        .map(|c| CatalogRow {
            name: c.name,
            open: c.open,
            resident_bytes: c.resident_bytes,
        })
        .collect();
    Ok(Response::Catalog { collections })
}

/// Map a protocol failure code to the process exit code clients use.
pub fn protocol_code_to_exit(code: &str) -> u8 {
    if code == "budget" {
        EXIT_BUDGET
    } else {
        EXIT_ERROR
    }
}
