//! The `bfhrf serve` daemon: newline-delimited JSON over TCP.
//!
//! # Protocol
//!
//! One request per line, one response per line, UTF-8 JSON both ways.
//! A connection may carry any number of requests.
//!
//! ```text
//! → {"op":"avgrf","queries":["((A,B),(C,D));"],"normalized":false}
//! ← {"ok":true,"n_taxa":4,"scores":[{"index":0,"left":0,"right":0,"n_refs":2,"avg":0.0}]}
//! → {"op":"best-query","queries":[...]}
//! ← {"ok":true,"best_index":1,"avg":0.5,"total":3}
//! → {"op":"stats"}
//! ← {"ok":true,"generation":0,"n_trees":10,"n_taxa":16,"distinct":120,
//!    "sum":1300,"wal_pending":2,"served":17,"metrics":{"series":[...]}}
//! → {"op":"add","trees":["((A,B),(C,D));"]}        (admin)
//! ← {"ok":true,"applied":1,"n_trees":11}
//! → {"op":"remove","trees":[...]}                   (admin)
//! → {"op":"compact"}                                (admin)
//! ← {"ok":true,"generation":1,"wal_pending":0}
//! → {"op":"shutdown"}
//! ← {"ok":true,"shutdown":true}
//! ```
//!
//! Failures: `{"ok":false,"code":"error"|"budget","outcome":"error"|
//! "budget"|"cancelled","error":"..."}` — the `budget` code marks
//! per-request resource refusals (`--mem-budget`, `--timeout-ms`), which
//! clients map to exit code 3; `outcome` refines the code for operators
//! (a deadline expiry reports `cancelled`, an allocation refusal
//! `budget`). Query responses carry a `notes` array of degradation
//! messages (empty when the run was clean), and the `stats` response
//! embeds a full metrics snapshot under `metrics` (see `phylo-obs`).
//!
//! # Concurrency
//!
//! A fixed pool of worker threads shares one listener. Queries run on an
//! immutable `Arc` snapshot of the hash, pre-frozen into the
//! probe-optimized [`bfhrf::FrozenBfh`] layout once per snapshot
//! generation: a reader takes the snapshot lock only long enough to clone
//! the `Arc`, so queries never block behind an admin mutation — writers
//! (`add`/`remove`/`compact`) mutate the [`Index`] under its own mutex,
//! then publish a fresh snapshot (freezing the mutated hash) by swapping
//! the `Arc`. In-flight queries keep answering from the snapshot they
//! started with.
//!
//! Shutdown does not poll: every live connection registers a handle in a
//! shared registry, and the shutdown path calls `TcpStream::shutdown` on
//! each — a worker blocked in `read` wakes immediately with EOF instead of
//! noticing a flag at the next 250 ms poll tick.

use crate::json::{self, Json};
use crate::{CliError, EXIT_BUDGET, EXIT_ERROR};
use bfhrf::{Comparator, CoreError, FrozenComparator, RunBudget, RunGuard};
use phylo::{parse_newick_readonly, TaxonSet, Tree};
use phylo_index::Index;
use phylo_obs::{expose, Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Longest accepted request line (bytes) — bounds what a hostile client
/// can make a worker buffer.
const MAX_REQUEST_BYTES: usize = 32 << 20;
/// A connection that sends nothing for this long is dropped, so an idle
/// client cannot pin a worker forever. Also the socket read timeout —
/// reads block the full window (shutdown interrupts them through the
/// connection registry, not by polling).
const IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Everything `bfhrf serve` needs to come up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Index directory (created by `bfhrf index build`).
    pub index_dir: PathBuf,
    /// Bind address, e.g. `127.0.0.1:4077` (`:0` picks a free port).
    pub addr: String,
    /// Worker thread count.
    pub threads: usize,
    /// Per-request allocation budget in bytes.
    pub mem_budget: Option<usize>,
    /// Per-request deadline in milliseconds.
    pub timeout_ms: Option<u64>,
}

/// The immutable state queries read: frozen hash + taxa, swapped
/// atomically as a unit after every admin mutation. Freezing happens once
/// per snapshot generation, never on the request path.
struct SnapView {
    frozen: Arc<bfhrf::FrozenBfh>,
    taxa: TaxonSet,
}

/// Wire op names, in dispatch order; the last slot absorbs unparseable
/// requests and unknown ops so every request lands in exactly one series.
const OPS: [&str; 8] = [
    "avgrf",
    "best-query",
    "stats",
    "add",
    "remove",
    "compact",
    "shutdown",
    "unknown",
];
const OP_UNKNOWN: usize = OPS.len() - 1;

/// Request outcome labels. `cancelled` (deadline/cancel) is distinguished
/// from `budget` (allocation refusal) in metrics even though both share
/// the `budget` wire code and exit 3.
const OUTCOMES: [&str; 4] = ["ok", "error", "budget", "cancelled"];
const OUTCOME_OK: usize = 0;

/// Metric handles the daemon touches per request, resolved once at bind
/// time so the request path never takes the registry lock. Every
/// op × outcome series is pre-registered, which also pins the `stats`
/// schema: all combinations appear (zero-valued) from the first snapshot.
struct ServeMetrics {
    latency: [Histogram; OPS.len()],
    outcomes: [[Counter; OUTCOMES.len()]; OPS.len()],
    admin_wait: Histogram,
    snap_wait: Histogram,
    conns_active: Gauge,
    conns_total: Counter,
    swaps: Counter,
}

impl ServeMetrics {
    fn resolve() -> ServeMetrics {
        let reg = phylo_obs::global();
        ServeMetrics {
            latency: std::array::from_fn(|i| reg.histogram("serve_request_ns", &[("op", OPS[i])])),
            outcomes: std::array::from_fn(|i| {
                std::array::from_fn(|j| {
                    reg.counter(
                        "serve_requests_total",
                        &[("op", OPS[i]), ("outcome", OUTCOMES[j])],
                    )
                })
            }),
            admin_wait: reg.histogram("serve_queue_wait_ns", &[("lock", "admin")]),
            snap_wait: reg.histogram("serve_queue_wait_ns", &[("lock", "snapshot")]),
            conns_active: reg.gauge("serve_connections_active", &[]),
            conns_total: reg.counter("serve_connections_total", &[]),
            swaps: reg.counter("serve_snapshot_swaps_total", &[]),
        }
    }

    fn op_index(op: &str) -> usize {
        OPS.iter().position(|&o| o == op).unwrap_or(OP_UNKNOWN)
    }

    fn outcome_index(outcome: &str) -> usize {
        OUTCOMES.iter().position(|&o| o == outcome).unwrap_or(1)
    }
}

struct ServeState {
    snap: RwLock<Arc<SnapView>>,
    admin: Mutex<Index>,
    shutdown: AtomicBool,
    served: AtomicU64,
    mem_budget: Option<usize>,
    timeout_ms: Option<u64>,
    /// Live connections by id; shutdown walks this and half-closes each
    /// socket so blocked readers wake immediately.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    metrics: ServeMetrics,
}

/// Lock the admin mutex, recording how long the request queued behind
/// other admin work.
fn lock_admin(state: &ServeState) -> Result<MutexGuard<'_, Index>, ReqError> {
    let start = Instant::now();
    let guard = state
        .admin
        .lock()
        .map_err(|_| ReqError::new("admin state poisoned"))?;
    state.metrics.admin_wait.record_duration(start.elapsed());
    Ok(guard)
}

/// Registry entry for one connection, deregistered on drop (any exit path
/// from `handle_connection`).
struct ConnGuard<'a> {
    state: &'a ServeState,
    id: u64,
}

impl<'a> ConnGuard<'a> {
    fn register(state: &'a ServeState, stream: &TcpStream) -> Option<ConnGuard<'a>> {
        let handle = stream.try_clone().ok()?;
        let id = state.next_conn.fetch_add(1, Ordering::Relaxed);
        state
            .conns
            .lock()
            .expect("connection registry poisoned")
            .insert(id, handle);
        state.metrics.conns_total.inc();
        state.metrics.conns_active.add(1);
        Some(ConnGuard { state, id })
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.state.metrics.conns_active.sub(1);
        if let Ok(mut conns) = self.state.conns.lock() {
            conns.remove(&self.id);
        }
    }
}

/// Half-close every registered connection: readers parked in `read` get
/// EOF at once instead of waiting out a poll interval.
fn interrupt_connections(state: &ServeState) {
    if let Ok(conns) = state.conns.lock() {
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// A typed request failure: protocol code + message, plus the finer
/// `outcome` label metrics use (`cancelled` vs `budget` share the wire
/// code but are different operational signals).
struct ReqError {
    code: &'static str,
    outcome: &'static str,
    message: String,
}

impl ReqError {
    fn new(message: impl Into<String>) -> Self {
        ReqError {
            code: "error",
            outcome: "error",
            message: message.into(),
        }
    }

    fn from_core(e: CoreError) -> Self {
        let (code, outcome) = match e {
            CoreError::Cancelled(_) => ("budget", "cancelled"),
            CoreError::ResourceLimit(_) => ("budget", "budget"),
            _ => ("error", "error"),
        };
        ReqError {
            code,
            outcome,
            message: e.to_string(),
        }
    }

    fn from_index(e: phylo_index::IndexError) -> Self {
        match e {
            phylo_index::IndexError::Core(c) => ReqError::from_core(c),
            other => ReqError::new(other.to_string()),
        }
    }

    fn into_json(self) -> Json {
        Json::obj(vec![
            ("ok", false.into()),
            ("code", self.code.into()),
            ("outcome", self.outcome.into()),
            ("error", self.message.into()),
        ])
    }
}

enum Action {
    Continue,
    Shutdown,
}

/// A bound, not-yet-running daemon: lets callers learn the OS-assigned
/// port (and write a `--port-file`) before the accept loops start.
pub struct Server {
    listener: Arc<TcpListener>,
    state: Arc<ServeState>,
    threads: usize,
    addr: SocketAddr,
}

impl Server {
    /// Open the index and bind the listener.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, CliError> {
        let mut index = Index::open(&cfg.index_dir).map_err(crate::index_fail)?;
        let snap = Arc::new(SnapView {
            frozen: index.frozen(),
            taxa: index.taxa().clone(),
        });
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| CliError::from(format!("cannot bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CliError::from(format!("cannot resolve bound address: {e}")))?;
        Ok(Server {
            listener: Arc::new(listener),
            state: Arc::new(ServeState {
                snap: RwLock::new(snap),
                admin: Mutex::new(index),
                shutdown: AtomicBool::new(false),
                served: AtomicU64::new(0),
                mem_budget: cfg.mem_budget,
                timeout_ms: cfg.timeout_ms,
                conns: Mutex::new(HashMap::new()),
                next_conn: AtomicU64::new(0),
                metrics: ServeMetrics::resolve(),
            }),
            threads: cfg.threads.max(1),
            addr,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Run the accept loops until a `shutdown` request lands. Returns the
    /// number of requests served.
    pub fn run(self) -> Result<u64, CliError> {
        let Server {
            listener,
            state,
            threads,
            addr,
        } = self;
        std::thread::scope(|scope| {
            for i in 0..threads {
                let listener = Arc::clone(&listener);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("bfhrf-serve-{i}"))
                    .spawn_scoped(scope, move || worker_loop(&listener, &state, addr))
                    .expect("spawning a worker thread");
            }
        });
        Ok(state.served.load(Ordering::Relaxed))
    }
}

fn worker_loop(listener: &TcpListener, state: &ServeState, addr: SocketAddr) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => handle_connection(stream, state, addr),
            Err(_) if state.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        }
    }
}

/// After `shutdown` flips, workers may still be parked in `accept`; a
/// no-op connection per worker unparks them.
fn wake_workers(addr: SocketAddr, n: usize) {
    for _ in 0..n {
        drop(TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(200),
        ));
    }
}

enum LineRead {
    /// `buf` holds one complete request line (newline stripped).
    Line,
    /// The peer closed the connection cleanly.
    Eof,
    /// Shutdown, idle timeout, oversize line, or a socket error.
    Close,
}

/// Read one newline-terminated request. The read blocks up to
/// [`IDLE_TIMEOUT`]; shutdown interrupts it through the connection
/// registry (the socket half-closes and the read returns EOF), so there is
/// no polling interval to wait out. Partial bytes accumulate in `buf`
/// across reads — a slow sender loses nothing.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    state: &ServeState,
) -> LineRead {
    buf.clear();
    let start = Instant::now();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return LineRead::Close;
        }
        match reader.fill_buf() {
            Ok([]) => return LineRead::Eof,
            Ok(avail) => {
                if let Some(pos) = avail.iter().position(|&b| b == b'\n') {
                    buf.extend_from_slice(&avail[..pos]);
                    reader.consume(pos + 1);
                    return LineRead::Line;
                }
                let n = avail.len();
                buf.extend_from_slice(avail);
                reader.consume(n);
                if buf.len() > MAX_REQUEST_BYTES {
                    return LineRead::Close;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if start.elapsed() > IDLE_TIMEOUT {
                    return LineRead::Close;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Close,
        }
    }
}

fn handle_connection(stream: TcpStream, state: &ServeState, addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let Some(_conn_guard) = ConnGuard::register(state, &stream) else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        match read_request_line(&mut reader, &mut buf, state) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::Close => return,
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (response, action) = handle_request(line, state);
        state.served.fetch_add(1, Ordering::Relaxed);
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if matches!(action, Action::Shutdown) {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake blocked readers instantly (no poll tick) and unpark any
            // workers sitting in accept().
            interrupt_connections(state);
            wake_workers(addr, 64); // generous: covers any thread count
            return;
        }
    }
}

fn request_guard(state: &ServeState) -> RunGuard {
    RunGuard::with_budget(RunBudget {
        max_bytes: state.mem_budget,
        deadline: state
            .timeout_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms)),
    })
}

/// Parse the request's Newick payloads against the snapshot's frozen
/// namespace (unknown labels are request errors, not namespace growth).
/// Read-only resolution: no per-request namespace clone.
fn parse_payload_trees(taxa: &TaxonSet, items: &[Json]) -> Result<Vec<Tree>, ReqError> {
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let text = item
                .as_str()
                .ok_or_else(|| ReqError::new(format!("tree {i} is not a string")))?;
            parse_newick_readonly(text, taxa).map_err(|e| ReqError::new(format!("tree {i}: {e}")))
        })
        .collect()
}

fn payload_array<'a>(req: &'a Json, key: &str) -> Result<&'a [Json], ReqError> {
    req.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ReqError::new(format!("request needs a {key:?} array")))
}

/// Dispatch one request, recording its latency and outcome under the op
/// label (`unknown` for unparseable requests). This wrapper is the whole
/// query-path instrumentation: one clock pair, one histogram record, one
/// counter bump per request.
fn handle_request(line: &str, state: &ServeState) -> (Json, Action) {
    let start = Instant::now();
    let (op_idx, result) = dispatch(line, state);
    state.metrics.latency[op_idx].record_duration(start.elapsed());
    match result {
        Ok((json, action)) => {
            state.metrics.outcomes[op_idx][OUTCOME_OK].inc();
            (json, action)
        }
        Err(e) => {
            state.metrics.outcomes[op_idx][ServeMetrics::outcome_index(e.outcome)].inc();
            (e.into_json(), Action::Continue)
        }
    }
}

fn dispatch(line: &str, state: &ServeState) -> (usize, Result<(Json, Action), ReqError>) {
    let req = match json::parse(line) {
        Ok(req) => req,
        Err(e) => return (OP_UNKNOWN, Err(ReqError::new(e))),
    };
    let Some(op) = req.get("op").and_then(Json::as_str) else {
        return (
            OP_UNKNOWN,
            Err(ReqError::new("request needs an \"op\" string")),
        );
    };
    let op_idx = ServeMetrics::op_index(op);
    let result = match op {
        "avgrf" => op_avgrf(&req, state).map(|j| (j, Action::Continue)),
        "best-query" => op_best(&req, state).map(|j| (j, Action::Continue)),
        "stats" => op_stats(state).map(|j| (j, Action::Continue)),
        "add" | "remove" => op_mutate(&req, state, op == "add").map(|j| (j, Action::Continue)),
        "compact" => op_compact(state).map(|j| (j, Action::Continue)),
        "shutdown" => Ok((
            Json::obj(vec![("ok", true.into()), ("shutdown", true.into())]),
            Action::Shutdown,
        )),
        other => Err(ReqError::new(format!(
            "unknown op {other:?} (expected avgrf, best-query, stats, add, remove, compact, shutdown)"
        ))),
    };
    (op_idx, result)
}

/// Clone the current snapshot `Arc` out of the cell — the only moment a
/// query touches a lock. The wait is recorded so contention behind
/// publishing writers shows up as `serve_queue_wait_ns{lock=snapshot}`.
fn current_snap(state: &ServeState) -> Arc<SnapView> {
    let start = Instant::now();
    let snap = Arc::clone(&state.snap.read().expect("snapshot lock poisoned"));
    state.metrics.snap_wait.record_duration(start.elapsed());
    snap
}

/// Degradation notes recorded while serving one request, as a JSON array
/// (empty array when the run was clean — the key is always present so
/// clients need no existence check).
fn notes_json(guard: &RunGuard) -> Json {
    Json::Arr(
        guard
            .degradations()
            .iter()
            .map(|d| Json::from(d.to_string()))
            .collect(),
    )
}

fn scored(
    snap: &SnapView,
    req: &Json,
    guard: &RunGuard,
) -> Result<Vec<bfhrf::QueryScore>, ReqError> {
    let queries = parse_payload_trees(&snap.taxa, payload_array(req, "queries")?)?;
    // Rayon fan-out only pays off past a single query; the common
    // one-query request runs on the worker thread itself.
    FrozenComparator::new(&snap.frozen, &snap.taxa)
        .parallel(queries.len() > 1)
        .average_all_guarded(&queries, guard)
        .map_err(ReqError::from_core)
}

fn op_avgrf(req: &Json, state: &ServeState) -> Result<Json, ReqError> {
    let snap = current_snap(state);
    let guard = request_guard(state);
    let scores = scored(&snap, req, &guard)?;
    let normalized = req
        .get("normalized")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let halved = req.get("halved").and_then(Json::as_bool).unwrap_or(false);
    let n_taxa = snap.taxa.len();
    let rows = scores
        .iter()
        .map(|s| {
            let mut avg = if normalized {
                bfhrf::variants::normalized_average(&s.rf, n_taxa)
            } else {
                s.rf.average()
            };
            if halved {
                avg /= 2.0;
            }
            Json::obj(vec![
                ("index", s.index.into()),
                ("left", s.rf.left.into()),
                ("right", s.rf.right.into()),
                ("n_refs", s.rf.n_refs.into()),
                ("avg", avg.into()),
            ])
        })
        .collect();
    Ok(Json::obj(vec![
        ("ok", true.into()),
        ("n_taxa", n_taxa.into()),
        ("scores", Json::Arr(rows)),
        ("notes", notes_json(&guard)),
    ]))
}

fn op_best(req: &Json, state: &ServeState) -> Result<Json, ReqError> {
    let snap = current_snap(state);
    let guard = request_guard(state);
    let scores = scored(&snap, req, &guard)?;
    let best = bfhrf::best_query(&scores)
        .ok_or_else(|| ReqError::new("the \"queries\" array is empty"))?;
    Ok(Json::obj(vec![
        ("ok", true.into()),
        ("best_index", best.index.into()),
        ("avg", best.rf.average().into()),
        ("total", best.rf.total().into()),
        ("notes", notes_json(&guard)),
    ]))
}

fn op_stats(state: &ServeState) -> Result<Json, ReqError> {
    // Index::stats also refreshes the index_generation / index_wal_pending
    // gauges, so the metrics snapshot below reflects this very answer.
    let stats = lock_admin(state)?.stats();
    let metrics = expose::to_json(&phylo_obs::global().snapshot());
    Ok(Json::obj(vec![
        ("ok", true.into()),
        ("generation", stats.generation.into()),
        ("n_trees", stats.n_trees.into()),
        ("n_taxa", stats.n_taxa.into()),
        ("distinct", stats.distinct.into()),
        ("sum", stats.sum.into()),
        ("wal_pending", stats.wal_pending.into()),
        ("served", state.served.load(Ordering::Relaxed).into()),
        ("metrics", metrics),
    ]))
}

fn op_mutate(req: &Json, state: &ServeState, add: bool) -> Result<Json, ReqError> {
    let items = payload_array(req, "trees")?;
    let mut index = lock_admin(state)?;
    // Validate the whole batch against the namespace up front so a typo in
    // tree k does not leave trees 0..k applied.
    let trees = parse_payload_trees(index.taxa(), items)?;
    if !add {
        // remove_tree is verify-then-mutate per tree, but a batch can still
        // fail halfway; dry-run the batch on a scratch hash first.
        let mut probe = index.bfh().clone();
        let taxa = index.taxa().clone();
        for (i, tree) in trees.iter().enumerate() {
            probe
                .remove_tree(tree, &taxa)
                .map_err(|e| ReqError::new(format!("tree {i}: {e}")))?;
        }
    }
    let mut applied = 0usize;
    for tree in &trees {
        let r = if add {
            index.append_add(tree)
        } else {
            index.append_remove(tree)
        };
        r.map_err(ReqError::from_index)?;
        applied += 1;
    }
    // Publish the mutated hash for queries, frozen once for this
    // generation; in-flight readers keep their old Arc alive.
    let snap = Arc::new(SnapView {
        frozen: index.frozen(),
        taxa: index.taxa().clone(),
    });
    *state.snap.write().expect("snapshot lock poisoned") = snap;
    state.metrics.swaps.inc();
    Ok(Json::obj(vec![
        ("ok", true.into()),
        ("applied", applied.into()),
        ("n_trees", index.stats().n_trees.into()),
    ]))
}

fn op_compact(state: &ServeState) -> Result<Json, ReqError> {
    let mut index = lock_admin(state)?;
    let meta = index.compact().map_err(ReqError::from_index)?;
    Ok(Json::obj(vec![
        ("ok", true.into()),
        ("generation", meta.generation.into()),
        ("distinct", meta.distinct.into()),
        ("wal_pending", 0usize.into()),
    ]))
}

/// Map a protocol failure code to the process exit code clients use.
pub fn protocol_code_to_exit(code: &str) -> u8 {
    if code == "budget" {
        EXIT_BUDGET
    } else {
        EXIT_ERROR
    }
}
