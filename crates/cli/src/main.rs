//! The `bfhrf` binary: thin wrapper around [`bfhrf_cli::run`].

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match bfhrf_cli::run(&argv) {
        Ok(report) => {
            // lock + buffer: reports can be full r×r matrices
            let stdout = std::io::stdout();
            let mut lock = std::io::BufWriter::new(stdout.lock());
            let _ = lock.write_all(report.as_bytes());
            let _ = lock.flush();
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("bfhrf: {message}");
            ExitCode::FAILURE
        }
    }
}
