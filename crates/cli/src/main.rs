//! The `bfhrf` binary: thin wrapper around [`bfhrf_cli::run_full`].
//!
//! Exit codes (see `bfhrf help`): 0 clean success, 1 error, 2 partial
//! success (records skipped under `--lenient`), 3 over budget or timed out.

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match bfhrf_cli::run_full(&argv) {
        Ok(outcome) => {
            // lock + buffer: reports can be full r×r matrices
            let stdout = std::io::stdout();
            let mut lock = std::io::BufWriter::new(stdout.lock());
            let _ = lock.write_all(outcome.stdout.as_bytes());
            let _ = lock.flush();
            for note in &outcome.notes {
                eprintln!("bfhrf: {note}");
            }
            ExitCode::from(outcome.code)
        }
        Err(e) => {
            eprintln!("bfhrf: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
