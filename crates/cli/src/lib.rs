//! Command implementations for the `bfhrf` command-line tool.
//!
//! The paper emphasizes an "easy to use installation and interface for
//! calculating the average RF of query trees against a collection of
//! reference trees"; this crate is that interface. Each subcommand is a
//! function from parsed [`args::Args`] to a printable report, so the whole
//! surface is unit-testable without spawning processes.
//!
//! ```text
//! bfhrf avgrf     --refs refs.nwk [--queries q.nwk]
//!                 [--algorithm bfhrf|bfhrf-seq|ds|dsmp|hashrf|day]
//!                 [--build-mode seq|parallel|sharded] [--shards K]
//!                 [--threads N] [--halved] [--normalized] [--common-taxa]
//! bfhrf best      --refs refs.nwk --queries q.nwk
//! bfhrf consensus --refs refs.nwk [--threshold 0.5 | --strict]
//! bfhrf matrix    --refs refs.nwk [--budget-mb M]
//! bfhrf simulate  --taxa N --trees R --out file.nwk [--seed S] [--pop-scale P]
//! bfhrf index     build|inspect|compact|add|remove   (persistent BFH index)
//! bfhrf serve     --index DIR [--addr HOST:PORT] [--threads MAX_CONNS] [--port-file F]
//! bfhrf query     --addr HOST:PORT --op avgrf|best-query|stats|... [--queries F]
//!                 [--batch N]   (pipelined wire-protocol-v2 batch frames)
//! ```

pub mod args;
pub mod proto;
pub mod server;

// The hand-rolled JSON value/parser used to live here; it moved to
// `phylo-obs` so the serve protocol, the metrics exposition, and the bench
// emitters share one escaping implementation. Re-exported under the old
// path for existing users.
pub use phylo_obs::json;

use args::Args;
use bfhrf::{
    best_query, hashrf_or_degrade, BfhBuilder, Comparator, CoreError, DayComparator,
    FrozenComparator, HashRfConfig, RunBudget, RunGuard, SetComparator,
};
use phylo::{IngestPolicy, IngestReport, TaxaPolicy, TreeCollection};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Clean success: every record parsed, the requested algorithm ran.
pub const EXIT_OK: u8 = 0;
/// Generic failure: bad arguments, unreadable input, a strict parse error.
pub const EXIT_ERROR: u8 = 1;
/// Partial success: output was produced, but `--lenient` skipped records
/// (details on stderr).
pub const EXIT_PARTIAL: u8 = 2;
/// Budget failure: the run was refused or cancelled by `--mem-budget` /
/// `--timeout` before producing output.
pub const EXIT_BUDGET: u8 = 3;

/// Everything one subcommand run produces: the report for stdout,
/// diagnostics for stderr, and the process exit code.
#[derive(Debug)]
pub struct CmdOutcome {
    /// The report, printed to stdout.
    pub stdout: String,
    /// Diagnostics (ingest summaries, skipped records, degradations),
    /// printed to stderr one per line.
    pub notes: Vec<String>,
    /// [`EXIT_OK`] or [`EXIT_PARTIAL`]; failures travel as [`CliError`].
    pub code: u8,
}

impl CmdOutcome {
    fn clean(stdout: String) -> Self {
        CmdOutcome {
            stdout,
            notes: Vec::new(),
            code: EXIT_OK,
        }
    }
}

/// A failed run: the message for stderr plus the exit code
/// ([`EXIT_ERROR`] or [`EXIT_BUDGET`]).
#[derive(Debug)]
pub struct CliError {
    /// Human-readable failure description.
    pub message: String,
    /// Process exit code.
    pub code: u8,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError {
            message,
            code: EXIT_ERROR,
        }
    }
}

/// Map a core failure to its exit code: budget refusals and cancellations
/// are [`EXIT_BUDGET`], everything else is a generic error.
fn core_fail(e: CoreError) -> CliError {
    let code = match e {
        CoreError::Cancelled(_) | CoreError::ResourceLimit(_) => EXIT_BUDGET,
        _ => EXIT_ERROR,
    };
    CliError {
        message: e.to_string(),
        code,
    }
}

/// Top-level dispatch: `argv[0]` is the subcommand.
pub fn run_full(argv: &[String]) -> Result<CmdOutcome, CliError> {
    let Some(cmd) = argv.first() else {
        return Err(usage().into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "avgrf" => cmd_avgrf(rest),
        "best" => cmd_best(rest),
        "consensus" => cmd_consensus(rest),
        "matrix" => cmd_matrix(rest),
        "simulate" => cmd_simulate(rest),
        "support" => cmd_support(rest),
        "cluster" => cmd_cluster(rest),
        "index" => cmd_index(rest),
        "convert" => cmd_convert(rest),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest),
        "stats" => cmd_stats(rest),
        "catalog" => cmd_catalog(rest),
        "help" | "--help" | "-h" => Ok(CmdOutcome::clean(usage())),
        other => Err(format!("unknown subcommand {other:?}\n\n{}", usage()).into()),
    }
}

/// [`run_full`] reduced to the stdout report — the stable entry point for
/// callers that predate exit codes and stderr notes.
pub fn run(argv: &[String]) -> Result<String, String> {
    run_full(argv).map(|o| o.stdout).map_err(|e| e.message)
}

/// The help text.
pub fn usage() -> String {
    "bfhrf — scalable average Robinson-Foulds for tree collections\n\
     \n\
     USAGE: bfhrf <subcommand> [options]\n\
     \n\
     avgrf      average RF of each query tree against the references\n\
     \x20          --refs FILE          reference trees (Newick, ';' separated)\n\
     \x20          --queries FILE       query trees (default: the references)\n\
     \x20          --algorithm NAME     bfhrf (default) | bfhrf-seq | ds | dsmp | hashrf | day\n\
     \x20          --build-mode MODE    hash build: seq | parallel | sharded\n\
     \x20          --shards K           shard count for the sharded build\n\
     \x20                               (default: thread count, min 2)\n\
     \x20          --threads N          rayon thread count (default: all cores)\n\
     \x20          --halved             report the divide-by-2 RF convention\n\
     \x20          --normalized         divide by the maximum 2(n-3)\n\
     \x20          --common-taxa        restrict to taxa common to all trees\n\
     best       index + score of the lowest-average query tree\n\
     \x20          --refs FILE --queries FILE [--threads N]\n\
     consensus  majority-rule, strict, or greedy consensus of the references\n\
     \x20          --refs FILE [--threshold T] [--strict | --greedy]\n\
     matrix     all-vs-all RF matrix (tab-separated)\n\
     \x20          --refs FILE [--budget-mb M]\n\
     \n\
     avgrf, consensus, and matrix also accept the hardening options:\n\
     \x20          --lenient            skip malformed Newick records instead\n\
     \x20                               of aborting (report on stderr)\n\
     \x20          --max-errors N       abort a --lenient run after N skips\n\
     \x20          --mem-budget BYTES   refuse allocations over the budget;\n\
     \x20                               hashrf degrades to bfhrf when over\n\
     \x20          --timeout SECS       cancel the run at the deadline\n\
     \n\
     avgrf, matrix, and index build also accept:\n\
     \x20          --profile            print a per-phase timing table on\n\
     \x20                               stderr when the run finishes\n\
     \n\
     exit codes: 0 clean success | 1 error | 2 partial success\n\
     \x20            (records skipped under --lenient) | 3 over budget or\n\
     \x20            timed out\n\
     simulate   coalescent gene-tree collection\n\
     \x20          --taxa N --trees R --out FILE [--seed S] [--pop-scale P]\n\
     support    annotate a focal tree with split support from the references\n\
     \x20          --refs FILE --tree FILE\n\
     cluster    k-medoids clustering of the collection by RF distance\n\
     \x20          --refs FILE --k K [--budget-mb M]\n\
     index      persistent on-disk BFH index (snapshot + WAL)\n\
     \x20          build    --refs FILE --out DIR [--shards K] [--lenient]\n\
     \x20                   [--format newick|bin]  pin the expected input\n\
     \x20                   encoding (the file is sniffed either way)\n\
     \x20                   or --refs FILE --catalog DIR --collection NAME\n\
     \x20                   to create a collection in a local catalog\n\
     \x20          inspect  --index DIR [--check]  also reports the snapshot\n\
     \x20                   and zero-copy frozen-sidecar formats + sizes\n\
     \x20                   or --catalog DIR --collection NAME\n\
     \x20          compact  --index DIR\n\
     \x20          add      --index DIR --trees FILE\n\
     \x20          remove   --index DIR --trees FILE\n\
     convert    re-encode a tree file (input encoding is sniffed)\n\
     \x20          --in FILE --out FILE --format newick|bin [--lenient]\n\
     serve      answer queries from an index over TCP (NDJSON protocol v2)\n\
     \x20          --index DIR [--addr HOST:PORT] [--threads MAX_CONNS]\n\
     \x20          [--port-file FILE] [--mem-budget BYTES] [--timeout-ms MS]\n\
     \x20          [--catalog DIR]  host named collections next to the\n\
     \x20                           default index, LRU-evicted under the\n\
     \x20                           shared --mem-budget\n\
     query      request(s) against a running server\n\
     \x20          --addr HOST:PORT | --port-file FILE\n\
     \x20          --op avgrf|best-query|ping|stats|taxa|add|remove|compact|\n\
     \x20               xavgrf|catalog-create|catalog-drop|catalog-list|\n\
     \x20               shutdown\n\
     \x20          [--queries FILE] [--trees FILE] [--normalized] [--halved]\n\
     \x20          [--format newick|bin]  tree encoding on the wire; bin\n\
     \x20                               negotiates the binary encoding in\n\
     \x20                               the hello and sends compact base64\n\
     \x20                               records (tree-payload ops only)\n\
     \x20          [--collection NAME]  route the op at a named catalog\n\
     \x20                               collection (v2 framing)\n\
     \x20          [--refs-collection A --queries-collection B]  xavgrf\n\
     \x20                               operands: cross-collection average\n\
     \x20                               RF over the common taxa\n\
     \x20          [--name NAME]        catalog-create / catalog-drop target\n\
     \x20          [--batch N]   pipelined v2 batch frames of N queries each\n\
     \x20          [--retries N] [--backoff-ms MS]\n\
     \x20                        reconnect + resend on connection loss or a\n\
     \x20                        busy shed (idempotent read ops only);\n\
     \x20                        exponential backoff with jitter. Exhausted\n\
     \x20                        retries keep the 0/1/3 exit contract.\n\
     catalog    administer a serving daemon's collection catalog\n\
     \x20          create   --addr|--port-file --name NAME [--trees FILE]\n\
     \x20          drop     --addr|--port-file --name NAME\n\
     \x20          list     --addr|--port-file\n\
     stats      fetch and render a running server's metrics\n\
     \x20          --addr HOST:PORT | --port-file FILE [--json]\n"
        .to_string()
}

/// Resolve `--lenient` / `--max-errors` into an [`IngestPolicy`].
fn ingest_policy(a: &Args) -> Result<IngestPolicy, String> {
    let max_errors: Option<usize> = a.get_parsed("max-errors")?;
    if a.flag("lenient") {
        Ok(IngestPolicy::Lenient {
            max_errors: max_errors.unwrap_or(usize::MAX),
        })
    } else if max_errors.is_some() {
        Err("--max-errors only applies together with --lenient".into())
    } else {
        Ok(IngestPolicy::Strict)
    }
}

/// Resolve `--mem-budget` / `--timeout` into a [`RunGuard`].
fn run_guard(a: &Args) -> Result<RunGuard, String> {
    let max_bytes: Option<usize> = a.get_parsed("mem-budget")?;
    let timeout: Option<u64> = a.get_parsed("timeout")?;
    Ok(RunGuard::with_budget(RunBudget {
        max_bytes,
        deadline: timeout.map(|s| Instant::now() + Duration::from_secs(s)),
    }))
}

/// Append the ingest report for `path` to the stderr notes; returns whether
/// the run is partial (any record skipped).
fn note_ingest(notes: &mut Vec<String>, path: &str, report: &IngestReport) -> bool {
    if !report.is_partial() {
        return false;
    }
    phylo_obs::global()
        .counter("ingest_recovered_total", &[])
        .add(report.skipped.len() as u64);
    notes.push(format!("{path}: {}", report.summary()));
    for rec in &report.skipped {
        notes.push(format!("{path}: skipped {rec}"));
    }
    true
}

/// Open `path` and read its trees in whichever encoding the file carries:
/// Newick text or a `PHYLOWIR` binary container, sniffed on the first
/// eight bytes. Newick files take the exact pre-sniffing code path, so
/// text-only workflows are byte-identical; binary input is detected,
/// never assumed. Also reports which format was found (for `--format`
/// validation and `convert`).
fn load_sniffed_with(
    path: &str,
    policy: IngestPolicy,
) -> Result<(TreeCollection, IngestReport, phylo_wire::WireFormat), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut taxa = phylo::TaxonSet::new();
    let mut stream = phylo_wire::SniffedReader::open(
        std::io::BufReader::new(file),
        &mut taxa,
        TaxaPolicy::Grow,
        policy,
    )
    .map_err(|e| format!("{path}: {e}"))?;
    let format = stream.format();
    let mut trees = Vec::new();
    loop {
        match stream.next_tree(&mut taxa) {
            Ok(Some(t)) => trees.push(t),
            Ok(None) => break,
            Err(e) => return Err(format!("{path}: {e}")),
        }
    }
    Ok((TreeCollection { taxa, trees }, stream.into_report(), format))
}

fn load_with(path: &str, policy: IngestPolicy) -> Result<(TreeCollection, IngestReport), String> {
    load_sniffed_with(path, policy).map(|(coll, report, _)| (coll, report))
}

fn load(path: &str) -> Result<TreeCollection, String> {
    load_with(path, IngestPolicy::Strict).map(|(coll, _)| coll)
}

fn load_queries_with(
    path: &str,
    refs: &mut TreeCollection,
    policy: IngestPolicy,
) -> Result<(Vec<phylo::Tree>, IngestReport), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    phylo_wire::read_trees_sniffed(
        std::io::BufReader::new(file),
        &mut refs.taxa,
        TaxaPolicy::Require,
        policy,
    )
    .map_err(|e| format!("{path}: {e}"))
}

fn load_queries_against(path: &str, refs: &mut TreeCollection) -> Result<Vec<phylo::Tree>, String> {
    load_queries_with(path, refs, IngestPolicy::Strict).map(|(trees, _)| trees)
}

/// Run `f` on a rayon pool with `threads` workers (or the global pool).
fn with_threads<T: Send>(
    threads: Option<usize>,
    f: impl FnOnce() -> T + Send,
) -> Result<T, String> {
    match threads {
        None => Ok(f()),
        Some(k) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(k)
                .build()
                .map_err(|e| format!("cannot build thread pool: {e}"))?;
            Ok(pool.install(f))
        }
    }
}

/// Resolve `--build-mode` / `--shards` into a configured [`BfhBuilder`].
///
/// Defaults are per-algorithm: `bfhrf` builds sharded (the fast path),
/// `bfhrf-seq` builds sequentially. An explicit `--build-mode` or
/// `--shards` overrides either.
fn resolve_builder(
    mode: Option<&str>,
    shards: Option<usize>,
    default_mode: &str,
) -> Result<BfhBuilder, String> {
    let mode = mode.unwrap_or(default_mode);
    let default_shards = match mode {
        "seq" | "parallel" => 1,
        "sharded" => rayon::current_num_threads().max(2),
        other => {
            return Err(format!(
                "unknown build mode {other:?} (expected seq, parallel, sharded)"
            ))
        }
    };
    Ok(BfhBuilder::new()
        .parallel(mode != "seq")
        .shards(shards.unwrap_or(default_shards)))
}

fn cmd_avgrf(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(
        raw,
        &["halved", "normalized", "common-taxa", "lenient", "profile"],
    )?;
    a.reject_unknown(
        &[
            "refs",
            "queries",
            "algorithm",
            "build-mode",
            "shards",
            "threads",
            "max-errors",
            "mem-budget",
            "timeout",
        ],
        &["halved", "normalized", "common-taxa", "lenient", "profile"],
    )?;
    let policy = ingest_policy(&a)?;
    let guard = run_guard(&a)?;
    let mut prof = phylo_obs::Profiler::new(a.flag("profile"));
    let mut notes = Vec::new();
    prof.phase("load");
    let refs_path = a.require("refs")?;
    let (mut refs, refs_report) = load_with(refs_path, policy)?;
    let mut partial = note_ingest(&mut notes, refs_path, &refs_report);
    let threads: Option<usize> = a.get_parsed("threads")?;
    let algorithm = a.get("algorithm").unwrap_or("bfhrf");
    let build_mode = a.get("build-mode");
    let shards: Option<usize> = a.get_parsed("shards")?;

    if a.flag("common-taxa") {
        let queries = match a.get("queries") {
            Some(p) => {
                let (coll, report) = load_with(p, policy)?;
                partial |= note_ingest(&mut notes, p, &report);
                coll
            }
            None => refs.clone(),
        };
        prof.phase("score");
        let out = bfhrf::variable_taxa::common_taxa_rf(&refs, &queries).map_err(core_fail)?;
        prof.phase("render");
        let mut report = format!(
            "# common taxa: {} of {} reference labels\n",
            out.taxa.len(),
            refs.taxa.len()
        );
        render_scores(&mut report, &out.scores, out.taxa.len(), &a);
        notes.extend(prof.render().lines().map(String::from));
        return Ok(CmdOutcome {
            stdout: report,
            notes,
            code: if partial { EXIT_PARTIAL } else { EXIT_OK },
        });
    }

    let queries = match a.get("queries") {
        Some(p) => {
            let (trees, report) = load_queries_with(p, &mut refs, policy)?;
            partial |= note_ingest(&mut notes, p, &report);
            trees
        }
        None => refs.trees.clone(),
    };
    let n = refs.taxa.len();
    if !matches!(algorithm, "bfhrf" | "bfhrf-seq") && (build_mode.is_some() || shards.is_some()) {
        return Err(format!(
            "--build-mode/--shards only apply to the bfhrf algorithms, not {algorithm:?}"
        )
        .into());
    }
    let prof = &mut prof;
    prof.phase("score");
    let scores = with_threads(threads, || -> Result<Vec<bfhrf::QueryScore>, CliError> {
        match algorithm {
            "bfhrf" | "bfhrf-seq" => {
                let default_mode = if algorithm == "bfhrf" {
                    "sharded"
                } else {
                    "seq"
                };
                let builder = resolve_builder(build_mode, shards, default_mode)?;
                prof.phase("build");
                let bfh = builder
                    .guard(guard.clone())
                    .from_trees(&refs.trees, &refs.taxa)
                    .map_err(core_fail)?;
                prof.phase("freeze+query");
                // Query through the frozen probe-optimized table; freezing
                // is one pass over the hash just built.
                FrozenComparator::from_owned(bfh.freeze(), &refs.taxa)
                    .parallel(algorithm == "bfhrf")
                    .average_all_guarded(&queries, &guard)
                    .map_err(core_fail)
            }
            "ds" => SetComparator::new(&refs.trees, &refs.taxa)
                .average_all_guarded(&queries, &guard)
                .map_err(core_fail),
            "dsmp" => SetComparator::new(&refs.trees, &refs.taxa)
                .parallel(true)
                .average_all_guarded(&queries, &guard)
                .map_err(core_fail),
            "hashrf" => {
                // Over the memory budget, HashRF falls back to BFHRF (same
                // averages, collision-free) instead of being refused — the
                // decision lands in the degradation notes below.
                let cmp =
                    hashrf_or_degrade(&refs.trees, &refs.taxa, HashRfConfig::default(), &guard)
                        .map_err(core_fail)?;
                cmp.average_all_guarded(&queries, &guard).map_err(core_fail)
            }
            "day" => DayComparator::new(&refs.trees, &refs.taxa)
                .average_all_guarded(&queries, &guard)
                .map_err(core_fail),
            other => Err(format!(
                "unknown algorithm {other:?} (expected bfhrf, bfhrf-seq, ds, dsmp, hashrf, day)"
            )
            .into()),
        }
    })??;
    for d in guard.degradations() {
        notes.push(d.to_string());
    }
    prof.phase("render");
    let mut report = String::new();
    render_scores(&mut report, &scores, n, &a);
    notes.extend(prof.render().lines().map(String::from));
    Ok(CmdOutcome {
        stdout: report,
        notes,
        code: if partial { EXIT_PARTIAL } else { EXIT_OK },
    })
}

fn render_scores(out: &mut String, scores: &[bfhrf::QueryScore], n_taxa: usize, a: &Args) {
    let _ = writeln!(out, "query\tavg_rf");
    for s in scores {
        let mut v = if a.flag("normalized") {
            bfhrf::variants::normalized_average(&s.rf, n_taxa)
        } else {
            s.rf.average()
        };
        if a.flag("halved") {
            v /= 2.0;
        }
        let _ = writeln!(out, "{}\t{v:.6}", s.index);
    }
}

fn cmd_best(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["refs", "queries", "threads"], &[])?;
    let mut refs = load(a.require("refs")?)?;
    let queries = load_queries_against(a.require("queries")?, &mut refs)?;
    let threads: Option<usize> = a.get_parsed("threads")?;
    let scores = with_threads(threads, || -> Result<Vec<bfhrf::QueryScore>, CliError> {
        let bfh = resolve_builder(None, None, "sharded")?
            .from_trees(&refs.trees, &refs.taxa)
            .map_err(core_fail)?;
        FrozenComparator::from_owned(bfh.freeze(), &refs.taxa)
            .parallel(true)
            .average_all(&queries)
            .map_err(core_fail)
    })??;
    let best = best_query(&scores)
        .ok_or_else(|| CliError::from("the --queries file contains no trees".to_string()))?;
    Ok(CmdOutcome::clean(format!(
        "best_query\t{}\navg_rf\t{:.6}\ntotal_rf\t{}\n",
        best.index,
        best.rf.average(),
        best.rf.total()
    )))
}

fn cmd_consensus(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &["strict", "greedy", "lenient"])?;
    a.reject_unknown(
        &["refs", "threshold", "max-errors", "mem-budget", "timeout"],
        &["strict", "greedy", "lenient"],
    )?;
    if a.flag("strict") && a.flag("greedy") {
        return Err("--strict and --greedy are mutually exclusive"
            .to_string()
            .into());
    }
    let policy = ingest_policy(&a)?;
    let guard = run_guard(&a)?;
    let mut notes = Vec::new();
    let refs_path = a.require("refs")?;
    let (refs, report) = load_with(refs_path, policy)?;
    let partial = note_ingest(&mut notes, refs_path, &report);
    let bfh = BfhBuilder::new()
        .guard(guard.clone())
        .from_trees(&refs.trees, &refs.taxa)
        .map_err(core_fail)?;
    let tree = if a.flag("strict") {
        bfhrf::consensus::strict_consensus(&bfh, &refs.taxa)
    } else if a.flag("greedy") {
        bfhrf::consensus::greedy_consensus(&bfh, &refs.taxa)
    } else {
        let threshold: f64 = a.get_parsed("threshold")?.unwrap_or(0.5);
        bfhrf::consensus::majority_consensus(&bfh, &refs.taxa, threshold)
    }
    .map_err(core_fail)?;
    Ok(CmdOutcome {
        stdout: format!("{}\n", phylo::write_newick(&tree, &refs.taxa)),
        notes,
        code: if partial { EXIT_PARTIAL } else { EXIT_OK },
    })
}

fn cmd_matrix(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &["lenient", "profile"])?;
    a.reject_unknown(
        &["refs", "budget-mb", "max-errors", "mem-budget", "timeout"],
        &["lenient", "profile"],
    )?;
    let policy = ingest_policy(&a)?;
    let mut guard = run_guard(&a)?;
    let mut prof = phylo_obs::Profiler::new(a.flag("profile"));
    // --budget-mb is the pre-existing coarse knob; --mem-budget (bytes)
    // takes precedence when both are given.
    if guard.budget.max_bytes.is_none() {
        let budget_mb: usize = a.get_parsed("budget-mb")?.unwrap_or(4096);
        guard.budget.max_bytes = Some(budget_mb << 20);
    }
    let mut notes = Vec::new();
    let refs_path = a.require("refs")?;
    prof.phase("load");
    let (refs, report) = load_with(refs_path, policy)?;
    let partial = note_ingest(&mut notes, refs_path, &report);
    prof.phase("matrix");
    let m = bfhrf::matrix::rf_matrix_exact_parallel_guarded(&refs.trees, &refs.taxa, &guard)
        .map_err(core_fail)?;
    prof.phase("render");
    let mut out = String::new();
    for i in 0..m.size() {
        for j in 0..m.size() {
            if j > 0 {
                out.push('\t');
            }
            let _ = write!(out, "{}", m.get(i, j));
        }
        out.push('\n');
    }
    notes.extend(prof.render().lines().map(String::from));
    Ok(CmdOutcome {
        stdout: out,
        notes,
        code: if partial { EXIT_PARTIAL } else { EXIT_OK },
    })
}

fn cmd_support(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["refs", "tree"], &[])?;
    let mut refs = load(a.require("refs")?)?;
    let focal_trees = load_queries_against(a.require("tree")?, &mut refs)?;
    let Some(focal) = focal_trees.first() else {
        return Err("the --tree file contains no tree".to_string().into());
    };
    let bfh = bfhrf::Bfh::build(&refs.trees, &refs.taxa);
    let annotated = bfhrf::support::write_newick_with_support(focal, &refs.taxa, &bfh);
    let supports = bfhrf::support::edge_support(focal, &refs.taxa, &bfh);
    let mut out = format!("{annotated}\n");
    let _ = writeln!(out, "edge\tcount\tfraction");
    for (i, s) in supports.iter().enumerate() {
        let _ = writeln!(out, "{i}\t{}\t{:.4}", s.count, s.fraction);
    }
    Ok(CmdOutcome::clean(out))
}

fn cmd_cluster(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["refs", "k", "budget-mb"], &[])?;
    let refs = load(a.require("refs")?)?;
    let k: usize = a
        .get_parsed("k")?
        .ok_or_else(|| "missing required option --k".to_string())?;
    if k == 0 || k > refs.len() {
        return Err(format!("--k must be in 1..={}", refs.len()).into());
    }
    let budget_mb: usize = a.get_parsed("budget-mb")?.unwrap_or(4096);
    let m = bfhrf::matrix::rf_matrix_exact(&refs.trees, &refs.taxa, budget_mb << 20)
        .map_err(core_fail)?;
    let c = bfhrf::cluster::k_medoids(&m, k);
    let sil = bfhrf::cluster::silhouette(&m, &c.assignment, k);
    let mut out = format!(
        "k\t{k}\ncost\t{}\nsilhouette\t{sil:.4}\nmedoids\t{:?}\n",
        c.cost, c.medoids
    );
    let _ = writeln!(out, "tree\tcluster");
    for (i, &cl) in c.assignment.iter().enumerate() {
        let _ = writeln!(out, "{i}\t{cl}");
    }
    Ok(CmdOutcome::clean(out))
}

fn cmd_simulate(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["taxa", "trees", "out", "seed", "pop-scale"], &[])?;
    let n: usize = a
        .get_parsed("taxa")?
        .ok_or_else(|| "missing required option --taxa".to_string())?;
    let r: usize = a
        .get_parsed("trees")?
        .ok_or_else(|| "missing required option --trees".to_string())?;
    let out_path = a.require("out")?;
    let seed: u64 = a.get_parsed("seed")?.unwrap_or(42);
    let pop_scale: f64 = a.get_parsed("pop-scale")?.unwrap_or(0.5);
    if n < 4 {
        return Err("--taxa must be at least 4".to_string().into());
    }
    let mut spec = phylo_sim::DatasetSpec::new("cli", n, r, seed);
    spec.pop_scale = pop_scale;
    let coll = phylo_sim::generate(&spec);
    phylo_sim::datasets::write_collection(Path::new(out_path), &coll)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(CmdOutcome::clean(format!(
        "wrote {r} trees on {n} taxa to {out_path} (seed {seed}, pop-scale {pop_scale})\n"
    )))
}

/// Map an index failure to its exit code: budget refusals travelling
/// inside [`phylo_index::IndexError::Core`] keep [`EXIT_BUDGET`],
/// everything else (corruption, IO, bad Newick) is a generic error.
pub(crate) fn index_fail(e: phylo_index::IndexError) -> CliError {
    match e {
        phylo_index::IndexError::Core(c) => core_fail(c),
        other => CliError {
            message: other.to_string(),
            code: EXIT_ERROR,
        },
    }
}

/// Load a tree file (Newick or binary, sniffed) for a wire payload,
/// validating each record client-side before it goes on the wire.
fn payload_collection(path: &str) -> Result<TreeCollection, CliError> {
    let coll = load(path)?;
    if coll.trees.is_empty() {
        return Err(format!("{path}: contains no trees").into());
    }
    Ok(coll)
}

/// Parse a tree file into Newick protocol payload strings.
fn payload_from_file(path: &str) -> Result<Vec<String>, CliError> {
    let coll = payload_collection(path)?;
    Ok(coll
        .trees
        .iter()
        .map(|t| phylo::write_newick(t, &coll.taxa))
        .collect())
}

/// Encode trees as base64 binary records in the *server's* taxon
/// namespace: map every local taxon id to the server id with the same
/// label (from the `taxa` exchange), remap, encode. A label the server
/// has never seen is a client-side error — the server's Newick parser
/// would have rejected the same tree, just later and per record.
fn encode_payload_bin(coll: &TreeCollection, labels: &[String]) -> Result<Vec<String>, CliError> {
    let mut server_ids: std::collections::HashMap<&str, phylo::TaxonId> =
        std::collections::HashMap::with_capacity(labels.len());
    for (i, label) in labels.iter().enumerate() {
        server_ids.insert(label.as_str(), phylo::TaxonId(i as u32));
    }
    let map: Vec<phylo::TaxonId> = (0..coll.taxa.len())
        .map(|i| {
            let label = coll.taxa.label(phylo::TaxonId(i as u32));
            server_ids.get(label).copied().ok_or_else(|| {
                CliError::from(format!(
                    "taxon {label:?} is not in the server's namespace; \
                     binary payloads cannot introduce new taxa"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let start = Instant::now();
    let payload = coll
        .trees
        .iter()
        .enumerate()
        .map(|(i, tree)| {
            let mut tree = tree.clone();
            phylo_wire::remap_leaf_taxa(&mut tree, &map);
            phylo_wire::encode_tree_vec(&tree)
                .map(|bytes| phylo_wire::b64::encode(&bytes))
                .map_err(|e| CliError::from(format!("tree {i}: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    phylo_obs::global()
        .histogram("wire_encode_ns", &[("encoding", "bin")])
        .record_duration(start.elapsed());
    Ok(payload)
}

/// `bfhrf convert`: re-encode a tree file between Newick text and the
/// `phylo-wire` binary container. The input encoding is sniffed, so
/// converting a file to the format it already carries is a (lossy-free)
/// normalization pass, and round trips are exact: Newick → bin → Newick
/// reproduces the canonical rendering byte for byte.
fn cmd_convert(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &["lenient"])?;
    a.reject_unknown(&["in", "out", "format", "max-errors"], &["lenient"])?;
    let policy = ingest_policy(&a)?;
    let in_path = a.require("in")?;
    let out_path = a.require("out")?;
    let target = a.require("format")?;
    let target = phylo_wire::WireFormat::parse(target)
        .ok_or_else(|| format!("unknown format {target:?} (expected newick or bin)"))?;
    let mut notes = Vec::new();
    let (coll, report, found) = load_sniffed_with(in_path, policy)?;
    let partial = note_ingest(&mut notes, in_path, &report);
    let write_fail =
        |e: &dyn std::fmt::Display| CliError::from(format!("cannot write {out_path}: {e}"));
    match target {
        phylo_wire::WireFormat::Bin => {
            let bytes = phylo_wire::collection_to_vec(&coll).map_err(|e| write_fail(&e))?;
            std::fs::write(out_path, bytes).map_err(|e| write_fail(&e))?;
        }
        phylo_wire::WireFormat::Newick => {
            let text: String = coll
                .trees
                .iter()
                .map(|t| format!("{}\n", phylo::write_newick(t, &coll.taxa)))
                .collect();
            std::fs::write(out_path, text).map_err(|e| write_fail(&e))?;
        }
    }
    Ok(CmdOutcome {
        stdout: format!(
            "in\t{in_path}\nin_format\t{found}\nout\t{out_path}\nout_format\t{target}\n\
             n_trees\t{}\nn_taxa\t{}\n",
            coll.trees.len(),
            coll.taxa.len()
        ),
        notes,
        code: if partial { EXIT_PARTIAL } else { EXIT_OK },
    })
}

fn cmd_index(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let Some(verb) = raw.first() else {
        return Err("index needs a verb: build, inspect, compact, add, remove"
            .to_string()
            .into());
    };
    let rest = &raw[1..];
    match verb.as_str() {
        "build" => cmd_index_build(rest),
        "inspect" => cmd_index_inspect(rest),
        "compact" => cmd_index_compact(rest),
        "add" => cmd_index_mutate(rest, true),
        "remove" => cmd_index_mutate(rest, false),
        other => Err(format!(
            "unknown index verb {other:?} (expected build, inspect, compact, add, remove)"
        )
        .into()),
    }
}

fn cmd_index_build(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &["lenient", "profile"])?;
    a.reject_unknown(
        &[
            "refs",
            "out",
            "format",
            "shards",
            "build-mode",
            "threads",
            "max-errors",
            "mem-budget",
            "timeout",
            "catalog",
            "collection",
        ],
        &["lenient", "profile"],
    )?;
    let policy = ingest_policy(&a)?;
    let guard = run_guard(&a)?;
    let mut prof = phylo_obs::Profiler::new(a.flag("profile"));
    let mut notes = Vec::new();
    let refs_path = a.require("refs")?;
    // `--format` pins the expected input encoding: the sniffer decides
    // what the file actually carries, and a mismatch is an error instead
    // of a silent fallback (a truncated binary header would otherwise be
    // "parsed" as garbage Newick).
    let expected_format = match a.get("format") {
        None => None,
        Some(s) => Some(
            phylo_wire::WireFormat::parse(s)
                .ok_or_else(|| format!("unknown format {s:?} (expected newick or bin)"))?,
        ),
    };
    let check_format = |found: phylo_wire::WireFormat| -> Result<(), CliError> {
        match expected_format {
            Some(want) if want != found => Err(format!(
                "{refs_path}: --format {want} was requested but the file carries {found}"
            )
            .into()),
            _ => Ok(()),
        }
    };
    if let Some(cat_dir) = a.get("catalog") {
        // Catalog mode: fold the references into a named collection of a
        // local catalog instead of a standalone --out directory.
        let name = a.require("collection")?;
        if a.get("out").is_some() {
            return Err("--catalog/--collection and --out are mutually exclusive"
                .to_string()
                .into());
        }
        let (refs, report, found) = load_sniffed_with(refs_path, policy)?;
        check_format(found)?;
        let partial = note_ingest(&mut notes, refs_path, &report);
        let text: String = refs
            .trees
            .iter()
            .map(|t| format!("{}\n", phylo::write_newick(t, &refs.taxa)))
            .collect();
        let mut cat = phylo_index::Catalog::open(Path::new(cat_dir), None).map_err(index_fail)?;
        let n_trees = cat.create(name, &text).map_err(index_fail)?;
        return Ok(CmdOutcome {
            stdout: format!("catalog\t{cat_dir}\ncollection\t{name}\nn_trees\t{n_trees}\n"),
            notes,
            code: if partial { EXIT_PARTIAL } else { EXIT_OK },
        });
    }
    let out_dir = a.require("out")?;
    prof.phase("load");
    let (refs, report, found) = load_sniffed_with(refs_path, policy)?;
    check_format(found)?;
    let partial = note_ingest(&mut notes, refs_path, &report);
    let threads: Option<usize> = a.get_parsed("threads")?;
    let shards: Option<usize> = a.get_parsed("shards")?;
    let build_mode = a.get("build-mode");
    prof.phase("build");
    let bfh = with_threads(threads, || -> Result<bfhrf::Bfh, CliError> {
        resolve_builder(build_mode, shards, "sharded")?
            .guard(guard.clone())
            .from_trees(&refs.trees, &refs.taxa)
            .map_err(core_fail)
    })??;
    prof.phase("write");
    let index = phylo_index::Index::create(Path::new(out_dir), bfh, refs.taxa.clone())
        .map_err(index_fail)?;
    let stats = index.stats();
    notes.extend(prof.render().lines().map(String::from));
    let mut stdout = format!(
        "index\t{out_dir}\ngeneration\t{}\nn_trees\t{}\nn_taxa\t{}\ndistinct\t{}\nsum\t{}\n",
        stats.generation, stats.n_trees, stats.n_taxa, stats.distinct, stats.sum
    );
    // The format row appears only when --format was given, so scripted
    // diffs of the historical output stay byte-identical.
    if expected_format.is_some() {
        let _ = writeln!(stdout, "format\t{found}");
    }
    Ok(CmdOutcome {
        stdout,
        notes,
        code: if partial { EXIT_PARTIAL } else { EXIT_OK },
    })
}

fn cmd_index_inspect(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &["check"])?;
    a.reject_unknown(&["index", "catalog", "collection"], &["check"])?;
    if let Some(cat_dir) = a.get("catalog") {
        // Catalog mode: open the named collection (replaying its WAL and
        // healing the tree-list sidecar exactly as the daemon would) and
        // report its stats.
        let name = a.require("collection")?;
        let mut cat = phylo_index::Catalog::open(Path::new(cat_dir), None).map_err(index_fail)?;
        let pin = cat.acquire(name).map_err(index_fail)?;
        let stats = pin.lock().stats();
        return Ok(CmdOutcome::clean(format!(
            "collection\t{name}\ngeneration\t{}\nn_taxa\t{}\nn_trees\t{}\nsum\t{}\ndistinct\t{}\nwal_pending\t{}\n",
            stats.generation, stats.n_taxa, stats.n_trees, stats.sum, stats.distinct, stats.wal_pending
        )));
    }
    let dir = Path::new(a.require("index")?);
    let meta = phylo_index::read_meta(&dir.join(phylo_index::SNAPSHOT_FILE)).map_err(index_fail)?;
    let wal_path = dir.join(phylo_index::WAL_FILE);
    let wal_pending = if wal_path.exists() {
        let (wal_gen, records) = phylo_index::read_wal(&wal_path).map_err(index_fail)?;
        if wal_gen == meta.generation {
            records.len()
        } else {
            0 // stale log, discarded on the next open
        }
    } else {
        0
    };
    let mut out = format!(
        "generation\t{}\nn_taxa\t{}\nn_trees\t{}\nn_shards\t{}\nsum\t{}\ndistinct\t{}\nwal_pending\t{wal_pending}\n",
        meta.generation, meta.n_taxa, meta.n_trees, meta.n_shards, meta.sum, meta.distinct
    );
    // Both on-disk encodings of the table, with format, version, and
    // section sizes: the replay snapshot (authoritative) and the
    // zero-copy frozen sidecar (a cache `open-frozen` consumers map).
    let snap_path = dir.join(phylo_index::SNAPSHOT_FILE);
    let snap_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
    let _ = writeln!(
        out,
        "snapshot_format\t{}/v{}\nsnapshot_bytes\t{snap_bytes}",
        String::from_utf8_lossy(phylo_index::SNAPSHOT_MAGIC).trim_end_matches('\0'),
        phylo_index::FORMAT_VERSION
    );
    let frozen_path = dir.join(phylo_index::FROZEN_FILE);
    let frozen_meta = if frozen_path.exists() {
        let fm = phylo_index::read_frozen_meta(&frozen_path).map_err(index_fail)?;
        let _ = writeln!(
            out,
            "frozen_format\t{}/v{}\nfrozen_generation\t{}\nfrozen_bytes\t{}\n\
             frozen_ctrl_bytes\t{}\nfrozen_entries_bytes\t{}\nfrozen_pool_bytes\t{}",
            String::from_utf8_lossy(phylo_index::FROZEN_MAGIC).trim_end_matches('\0'),
            phylo_index::FROZEN_VERSION,
            fm.generation,
            fm.file_len(),
            fm.ctrl.len,
            fm.entries.len,
            fm.pool.len
        );
        Some(fm)
    } else {
        let _ = writeln!(out, "frozen_sidecar\tabsent (compact once to write it)");
        None
    };
    if a.flag("check") {
        // Full validation: load the snapshot, replay the WAL, cross-check.
        let index = phylo_index::Index::open(dir).map_err(index_fail)?;
        let stats = index.stats();
        let _ = writeln!(
            out,
            "check\tok ({} trees, {} splits after WAL replay)",
            stats.n_trees, stats.distinct
        );
        // And the sidecar: recompute every lane checksum and the digest.
        if frozen_meta.is_some() {
            let fm = phylo_index::verify_frozen_with(&phylo_index::RealVfs, &frozen_path)
                .map_err(index_fail)?;
            let _ = writeln!(
                out,
                "frozen_check\tok ({} distinct splits, digest {:016x})",
                fm.layout.distinct, fm.digest
            );
        }
    }
    Ok(CmdOutcome::clean(out))
}

fn cmd_index_compact(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["index"], &[])?;
    let dir = Path::new(a.require("index")?);
    let mut index = phylo_index::Index::open(dir).map_err(index_fail)?;
    let folded = index.stats().wal_pending;
    let meta = index.compact().map_err(index_fail)?;
    Ok(CmdOutcome::clean(format!(
        "generation\t{}\nfolded\t{folded}\nn_trees\t{}\ndistinct\t{}\n",
        meta.generation, meta.n_trees, meta.distinct
    )))
}

fn cmd_index_mutate(raw: &[String], add: bool) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["index", "trees"], &[])?;
    let dir = Path::new(a.require("index")?);
    let trees_path = a.require("trees")?;
    let mut index = phylo_index::Index::open(dir).map_err(index_fail)?;
    let payload = payload_from_file(trees_path)?;
    let mut applied = 0usize;
    for newick in &payload {
        let r = if add {
            index.append_add_newick(newick)
        } else {
            index.append_remove_newick(newick)
        };
        r.map_err(|e| CliError {
            message: format!("after {applied} applied: {}", index_fail(e).message),
            code: EXIT_ERROR,
        })?;
        applied += 1;
    }
    let stats = index.stats();
    Ok(CmdOutcome::clean(format!(
        "applied\t{applied}\nn_trees\t{}\nwal_pending\t{}\n",
        stats.n_trees, stats.wal_pending
    )))
}

fn cmd_serve(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(
        &[
            "index",
            "addr",
            "threads",
            "port-file",
            "mem-budget",
            "timeout-ms",
            "catalog",
        ],
        &[],
    )?;
    let cfg = server::ServeConfig {
        index_dir: Path::new(a.require("index")?).to_path_buf(),
        addr: a.get("addr").unwrap_or("127.0.0.1:4077").to_string(),
        // Connections are cheap under the per-connection engine (a parked
        // thread each); the cap only guards against floods.
        threads: a.get_parsed("threads")?.unwrap_or(64),
        mem_budget: a.get_parsed("mem-budget")?,
        timeout_ms: a.get_parsed("timeout-ms")?,
        catalog_dir: a.get("catalog").map(|s| Path::new(s).to_path_buf()),
    };
    let srv = server::Server::bind(&cfg)?;
    let addr = srv.local_addr();
    if let Some(port_file) = a.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n"))
            .map_err(|e| CliError::from(format!("cannot write {port_file}: {e}")))?;
    }
    // The daemon's only immediate signal (stdout is buffered until exit):
    // humans see the address, scripts read the --port-file.
    eprintln!("bfhrf: serving {} on {addr}", cfg.index_dir.display());
    if let Some(cat) = &cfg.catalog_dir {
        eprintln!("bfhrf: catalog at {}", cat.display());
    }
    let served = srv.run()?;
    Ok(CmdOutcome::clean(format!("served\t{served}\n")))
}

/// Resolve `--addr` / `--port-file` to the server address.
fn query_addr(a: &Args) -> Result<String, CliError> {
    if let Some(addr) = a.get("addr") {
        return Ok(addr.to_string());
    }
    if let Some(pf) = a.get("port-file") {
        let text = std::fs::read_to_string(pf)
            .map_err(|e| CliError::from(format!("cannot read {pf}: {e}")))?;
        return Ok(text.trim().to_string());
    }
    Err("query needs --addr HOST:PORT or --port-file FILE"
        .to_string()
        .into())
}

/// Client-side retry budget for idempotent query ops: exponential backoff
/// with jitter between attempts, reset whenever a request actually
/// succeeds (so a long batch session is allowed `retries` consecutive
/// failures, not `retries` over its whole life).
///
/// Only reads (`avgrf`, `best-query`, `stats`, `ping`) may carry a retry
/// budget — re-sending an `add` after an ambiguous failure could apply it
/// twice, so mutations keep the old fail-fast contract.
struct Retry {
    /// Remaining consecutive failures before giving up.
    left: u32,
    /// Configured budget (for the reset).
    budget: u32,
    /// Base delay; doubles per consecutive failure.
    backoff_ms: u64,
    /// Consecutive failures so far (drives the exponent).
    streak: u32,
    /// xorshift64 state for jitter.
    rng: u64,
}

impl Retry {
    fn new(retries: u32, backoff_ms: u64) -> Retry {
        Retry {
            left: retries,
            budget: retries,
            backoff_ms: backoff_ms.max(1),
            streak: 0,
            rng: u64::from(std::process::id()) | 1,
        }
    }

    /// Account one failure. When budget remains: sleep the backoff (with
    /// jitter), report the retry on stderr, and return `true` so the
    /// caller loops. When exhausted: return `false` — the caller surfaces
    /// the underlying error with its usual exit code.
    fn pause(&mut self, why: &str) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        // Exponential backoff, capped at 10 s per wait.
        let base = self
            .backoff_ms
            .saturating_mul(1u64 << self.streak.min(16))
            .min(10_000);
        self.streak += 1;
        // xorshift64 jitter in [0, base/2]: concurrent clients retrying
        // the same outage spread out instead of reconnecting in lockstep.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let jitter = if base >= 2 {
            self.rng % (base / 2 + 1)
        } else {
            0
        };
        let wait = base + jitter;
        eprintln!(
            "bfhrf: {why}; retrying in {wait} ms ({} retr{} left)",
            self.left,
            if self.left == 1 { "y" } else { "ies" }
        );
        std::thread::sleep(Duration::from_millis(wait));
        true
    }

    /// A request went through: restore the budget for the next failure.
    fn reset(&mut self) {
        self.left = self.budget;
        self.streak = 0;
    }
}

/// Whether a failed *response* (ok=false) is safe to retry: only the
/// `busy` shed, which the server sends before running anything.
fn is_busy_response(resp: &json::Json) -> bool {
    resp.get("ok").and_then(json::Json::as_bool) == Some(false)
        && resp.get("code").and_then(json::Json::as_str) == Some("busy")
}

/// One request/response round trip with a retry budget: transport
/// failures (connect, send, read, malformed or truncated response) and
/// `busy` sheds back off and reconnect; typed server failures other than
/// `busy` return immediately — they would fail identically on a resend.
fn send_request_retry(
    addr: &str,
    request: &json::Json,
    retry: &mut Retry,
) -> Result<json::Json, CliError> {
    loop {
        match send_request(addr, request) {
            Ok(resp) if is_busy_response(&resp) => {
                if retry.pause("server is busy") {
                    continue;
                }
                return Ok(resp); // exhausted: caller maps busy → exit 1
            }
            Ok(resp) => {
                retry.reset();
                return Ok(resp);
            }
            Err(e) => {
                if retry.pause(&e.message) {
                    continue;
                }
                return Err(e);
            }
        }
    }
}

/// One request/response round trip against a running server.
fn send_request(addr: &str, request: &json::Json) -> Result<json::Json, CliError> {
    use std::io::{BufRead as _, Write as _};

    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::from(format!("cannot connect to {addr}: {e}")))?;
    stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
    stream
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| CliError::from(format!("cannot send request to {addr}: {e}")))?;
    let mut line = String::new();
    std::io::BufReader::new(&stream)
        .read_line(&mut line)
        .map_err(|e| CliError::from(format!("no response from {addr}: {e}")))?;
    if line.trim().is_empty() {
        return Err(format!("server at {addr} closed the connection without answering").into());
    }
    json::parse(line.trim()).map_err(|e| format!("malformed response: {e}").into())
}

/// Ops a retry budget may apply to: pure reads, where re-sending after an
/// ambiguous failure cannot double-apply anything.
const IDEMPOTENT_OPS: [&str; 7] = [
    "avgrf",
    "best-query",
    "stats",
    "ping",
    "taxa",
    "xavgrf",
    "catalog-list",
];

/// Ops that accept a `--collection` routing field.
const ROUTED_OPS: [&str; 8] = [
    "avgrf",
    "best-query",
    "ping",
    "stats",
    "taxa",
    "add",
    "remove",
    "compact",
];

/// Ops whose payload is a list of trees — the only ones `--format bin`
/// can re-encode.
const TREE_PAYLOAD_OPS: [&str; 4] = ["avgrf", "best-query", "add", "remove"];

fn cmd_query(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &["normalized", "halved"])?;
    a.reject_unknown(
        &[
            "addr",
            "port-file",
            "op",
            "format",
            "queries",
            "trees",
            "batch",
            "retries",
            "backoff-ms",
            "collection",
            "refs-collection",
            "queries-collection",
            "name",
        ],
        &["normalized", "halved"],
    )?;
    let addr = query_addr(&a)?;
    let op = a.get("op").unwrap_or("avgrf");
    let collection = a.get("collection").map(str::to_string);
    if collection.is_some() && !ROUTED_OPS.contains(&op) {
        return Err(format!(
            "--collection only applies to collection-routed ops ({}); got {op:?}",
            ROUTED_OPS.join(", ")
        )
        .into());
    }
    let format = match a.get("format") {
        None => phylo_wire::WireFormat::Newick,
        Some(s) => phylo_wire::WireFormat::parse(s)
            .ok_or_else(|| format!("unknown format {s:?} (expected newick or bin)"))?,
    };
    if format == phylo_wire::WireFormat::Bin && !TREE_PAYLOAD_OPS.contains(&op) {
        return Err(format!(
            "--format bin only applies to ops that carry trees ({}); got {op:?}",
            TREE_PAYLOAD_OPS.join(", ")
        )
        .into());
    }

    let retries: u32 = a.get_parsed("retries")?.unwrap_or(0);
    let backoff_ms: u64 = a.get_parsed("backoff-ms")?.unwrap_or(100);
    if a.get("backoff-ms").is_some() && a.get("retries").is_none() {
        return Err("--backoff-ms only applies together with --retries"
            .to_string()
            .into());
    }
    if retries > 0 && !IDEMPOTENT_OPS.contains(&op) {
        return Err(format!(
            "--retries only applies to idempotent ops ({}); a resent {op:?} could apply twice",
            IDEMPOTENT_OPS.join(", ")
        )
        .into());
    }
    let mut retry = Retry::new(retries, backoff_ms);

    if let Some(batch) = a.get_parsed::<usize>("batch")? {
        if op != "avgrf" {
            return Err(format!("--batch only applies to --op avgrf (got {op:?})").into());
        }
        if batch == 0 {
            return Err("--batch must be at least 1".to_string().into());
        }
        let coll = payload_collection(a.require("queries")?)?;
        let flags = proto::QueryFlags {
            normalized: a.flag("normalized"),
            halved: a.flag("halved"),
        };
        return batched_avgrf(&addr, batch, &coll, format, flags, collection, retry);
    }

    if format == phylo_wire::WireFormat::Bin {
        // Binary payloads need one persistent session: negotiate the
        // encoding in the hello, learn the server's taxon namespace, then
        // send the op on the same connection.
        let payload_key: &'static str = if matches!(op, "avgrf" | "best-query") {
            "queries"
        } else {
            "trees"
        };
        let coll = payload_collection(a.require(payload_key)?)?;
        let mut extra: Vec<(&'static str, json::Json)> = Vec::new();
        if matches!(op, "avgrf" | "best-query") {
            if a.flag("normalized") {
                extra.push(("normalized", true.into()));
            }
            if a.flag("halved") {
                extra.push(("halved", true.into()));
            }
        }
        let resp = send_request_bin_retry(
            &addr,
            op,
            &coll,
            payload_key,
            &extra,
            collection.as_deref(),
            &mut retry,
        )?;
        return finish_query_response(op, &resp);
    }

    let mut fields: Vec<(&str, json::Json)> = vec![("op", op.into())];
    match op {
        "avgrf" | "best-query" => {
            let payload = payload_from_file(a.require("queries")?)?;
            fields.push((
                "queries",
                json::Json::Arr(payload.into_iter().map(Into::into).collect()),
            ));
            if a.flag("normalized") {
                fields.push(("normalized", true.into()));
            }
            if a.flag("halved") {
                fields.push(("halved", true.into()));
            }
        }
        "add" | "remove" => {
            let payload = payload_from_file(a.require("trees")?)?;
            fields.push((
                "trees",
                json::Json::Arr(payload.into_iter().map(Into::into).collect()),
            ));
        }
        "ping" => fields.insert(0, ("v", 2u64.into())),
        "stats" | "compact" | "taxa" | "shutdown" => {}
        "xavgrf" => {
            fields.push(("refs", a.require("refs-collection")?.into()));
            fields.push(("queries", a.require("queries-collection")?.into()));
            if a.flag("normalized") {
                fields.push(("normalized", true.into()));
            }
            if a.flag("halved") {
                fields.push(("halved", true.into()));
            }
        }
        "catalog-create" => {
            fields.push(("name", a.require("name")?.into()));
            if let Some(trees_path) = a.get("trees") {
                let payload = payload_from_file(trees_path)?;
                fields.push((
                    "trees",
                    json::Json::Arr(payload.into_iter().map(Into::into).collect()),
                ));
            }
        }
        "catalog-drop" => fields.push(("name", a.require("name")?.into())),
        "catalog-list" => {}
        other => {
            return Err(format!(
                "unknown op {other:?} (expected avgrf, best-query, ping, stats, taxa, add, \
                 remove, compact, xavgrf, catalog-create, catalog-drop, catalog-list, shutdown)"
            )
            .into())
        }
    }
    // Collection routing and the catalog/cross-collection ops are a v2
    // vocabulary: frame them explicitly so an old server fails loudly
    // instead of guessing. Collection-less legacy ops keep their exact
    // pre-catalog frames.
    if let Some(name) = &collection {
        fields.push(("collection", name.as_str().into()));
    }
    let needs_v2 = collection.is_some()
        || matches!(
            op,
            "taxa" | "xavgrf" | "catalog-create" | "catalog-drop" | "catalog-list"
        );
    if needs_v2 && op != "ping" {
        fields.insert(0, ("v", 2u64.into()));
    }
    let request = json::Json::obj(fields);
    let resp = send_request_retry(&addr, &request, &mut retry)?;
    finish_query_response(op, &resp)
}

/// Shared tail of `query`: map a failed response to its exit code, relay
/// server notes to stderr, render the table.
fn finish_query_response(op: &str, resp: &json::Json) -> Result<CmdOutcome, CliError> {
    if resp.get("ok").and_then(json::Json::as_bool) != Some(true) {
        let code = resp
            .get("code")
            .and_then(json::Json::as_str)
            .unwrap_or("error");
        // The finer outcome label (budget vs cancelled) when the server
        // sends one; older servers only send the code.
        let outcome = resp
            .get("outcome")
            .and_then(json::Json::as_str)
            .unwrap_or(code);
        let message = resp
            .get("error")
            .and_then(json::Json::as_str)
            .unwrap_or("server reported an unspecified failure");
        return Err(CliError {
            message: format!("server: [{outcome}] {message}"),
            code: server::protocol_code_to_exit(code),
        });
    }
    // Degradation notes travel with successful responses; relay them to
    // stderr so `query` matches the offline commands' reporting.
    let notes: Vec<String> = resp
        .get("notes")
        .and_then(json::Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|n| n.as_str().map(|s| format!("server: {s}")))
        .collect();
    let stdout = render_response(op, resp)?;
    Ok(CmdOutcome {
        stdout,
        notes,
        code: EXIT_OK,
    })
}

/// A batch-session failure, tagged with whether an idempotent retry can
/// absorb it. Transport failures (connect, send, read, truncated or
/// malformed lines) and `busy` sheds are retryable; typed server errors
/// are not — resending the same frame would fail the same way.
struct SessionError {
    retryable: bool,
    err: CliError,
}

impl SessionError {
    fn transport(err: CliError) -> SessionError {
        SessionError {
            retryable: true,
            err,
        }
    }

    fn fatal(err: CliError) -> SessionError {
        SessionError {
            retryable: false,
            err,
        }
    }
}

/// One connected, hello-handshaken batch session.
struct BatchSession {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::io::BufWriter<std::net::TcpStream>,
    max_batch: usize,
}

/// Connect and run the `hello` handshake: learn the server's batch
/// ceiling before committing to a frame size (an old server that cannot
/// answer `hello` fails loudly here instead of mis-parsing v2 frames
/// later). When `encoding` asks for a non-default tree encoding, the
/// server must echo it back — a hello answer without the echo means the
/// server does not speak that encoding, and the session fails instead of
/// sending payloads the server would mis-read as Newick.
fn open_batch_session(
    addr: &str,
    encoding: Option<proto::WireEncoding>,
) -> Result<BatchSession, SessionError> {
    use proto::{Envelope, Request, Response};
    use std::io::Write as _;

    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| SessionError::transport(format!("cannot connect to {addr}: {e}").into()))?;
    stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
    stream.set_nodelay(true).ok();
    let writer_stream = stream.try_clone().map_err(|e| {
        SessionError::transport(format!("cannot clone connection to {addr}: {e}").into())
    })?;
    // Batch frames run large (a 64-query frame on real trees is hundreds
    // of kilobytes); a roomy write buffer keeps each frame to a few
    // syscalls instead of dozens of 8 KB slices.
    let mut writer = std::io::BufWriter::with_capacity(128 << 10, writer_stream);
    let mut reader = std::io::BufReader::with_capacity(64 << 10, stream);
    let hello = Envelope::v2(Request::Hello { encoding }, None);
    writer
        .write_all(format!("{}\n", hello.to_json()).as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| {
            SessionError::transport(format!("cannot send request to {addr}: {e}").into())
        })?;
    let max_batch = match read_batch_response(&mut reader, addr)?.0 {
        Response::Hello {
            max_batch,
            encoding: echoed,
            ..
        } => {
            if let Some(wanted) = encoding {
                if echoed != Some(wanted) {
                    return Err(SessionError::fatal(
                        format!(
                            "server at {addr} did not accept the {:?} tree encoding \
                             (no echo in its hello answer); upgrade the server or \
                             drop --format {}",
                            wanted.as_str(),
                            wanted.as_str()
                        )
                        .into(),
                    ));
                }
            }
            max_batch
        }
        Response::Error { code, message, .. } => {
            let err = CliError::from(format!("server rejected the hello handshake: {message}"));
            return Err(if code == proto::ErrorCode::Busy {
                SessionError::transport(err)
            } else {
                SessionError::fatal(err)
            });
        }
        _ => {
            return Err(SessionError::fatal(
                format!(
                    "server at {addr} answered the hello handshake with an unexpected shape \
                     (not a v2 server?)"
                )
                .into(),
            ))
        }
    };
    Ok(BatchSession {
        reader,
        writer,
        max_batch,
    })
}

fn read_batch_response(
    reader: &mut std::io::BufReader<std::net::TcpStream>,
    addr: &str,
) -> Result<(proto::Response, Option<u64>), SessionError> {
    use std::io::BufRead as _;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| SessionError::transport(format!("no response from {addr}: {e}").into()))?;
    if line.trim().is_empty() {
        return Err(SessionError::transport(
            format!("server at {addr} closed the connection mid-session").into(),
        ));
    }
    let doc = json::parse(line.trim())
        .map_err(|e| SessionError::transport(format!("malformed response: {e}").into()))?;
    proto::Response::from_json(&doc)
        .map_err(|e| SessionError::transport(format!("malformed response: {e}").into()))
}

/// Fetch the server's taxon labels over an open session — the namespace
/// binary payloads must be encoded in. Label order *is* id order.
fn fetch_server_taxa(
    session: &mut BatchSession,
    addr: &str,
    collection: Option<&str>,
) -> Result<Vec<String>, SessionError> {
    use proto::{Envelope, Request, Response};
    use std::io::Write as _;

    let env = Envelope::v2(
        Request::Taxa {
            collection: collection.map(str::to_string),
        },
        None,
    );
    session
        .writer
        .write_all(format!("{}\n", env.to_json()).as_bytes())
        .and_then(|()| session.writer.flush())
        .map_err(|e| {
            SessionError::transport(format!("cannot send request to {addr}: {e}").into())
        })?;
    match read_batch_response(&mut session.reader, addr)?.0 {
        Response::Taxa { labels, .. } => Ok(labels),
        Response::Error { code, message, .. } => {
            let err = CliError::from(format!("server cannot list its taxa: {message}"));
            Err(if code == proto::ErrorCode::Busy {
                SessionError::transport(err)
            } else {
                SessionError::fatal(err)
            })
        }
        _ => Err(SessionError::fatal(
            format!("server at {addr} answered the taxa request with an unexpected shape").into(),
        )),
    }
}

/// Send one raw-JSON request over an open session and read the raw
/// response document (the single-op path renders raw documents, not
/// typed [`proto::Response`] values).
fn session_round_trip(
    session: &mut BatchSession,
    addr: &str,
    request: &json::Json,
) -> Result<json::Json, SessionError> {
    use std::io::{BufRead as _, Write as _};

    session
        .writer
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| session.writer.flush())
        .map_err(|e| {
            SessionError::transport(format!("cannot send request to {addr}: {e}").into())
        })?;
    let mut line = String::new();
    session
        .reader
        .read_line(&mut line)
        .map_err(|e| SessionError::transport(format!("no response from {addr}: {e}").into()))?;
    if line.trim().is_empty() {
        return Err(SessionError::transport(
            format!("server at {addr} closed the connection mid-session").into(),
        ));
    }
    json::parse(line.trim())
        .map_err(|e| SessionError::transport(format!("malformed response: {e}").into()))
}

/// One binary-encoded request with a retry budget: each attempt opens a
/// fresh session (hello negotiating `bin`, then the taxa exchange), so a
/// reconnect re-learns the namespace before re-encoding the payload.
fn send_request_bin_retry(
    addr: &str,
    op: &str,
    coll: &TreeCollection,
    payload_key: &'static str,
    extra: &[(&'static str, json::Json)],
    collection: Option<&str>,
    retry: &mut Retry,
) -> Result<json::Json, CliError> {
    let attempt = |addr: &str| -> Result<json::Json, SessionError> {
        let mut session = open_batch_session(addr, Some(proto::WireEncoding::Bin))?;
        let labels = fetch_server_taxa(&mut session, addr, collection)?;
        let payload = encode_payload_bin(coll, &labels).map_err(SessionError::fatal)?;
        let mut fields: Vec<(&str, json::Json)> = vec![("v", 2u64.into()), ("op", op.into())];
        fields.push((
            payload_key,
            json::Json::Arr(payload.into_iter().map(Into::into).collect()),
        ));
        for (key, value) in extra {
            fields.push((key, value.clone()));
        }
        if let Some(name) = collection {
            fields.push(("collection", name.into()));
        }
        session_round_trip(&mut session, addr, &json::Json::obj(fields))
    };
    loop {
        match attempt(addr) {
            Ok(resp) if is_busy_response(&resp) => {
                if retry.pause("server is busy") {
                    continue;
                }
                return Ok(resp); // exhausted: caller maps busy → exit 1
            }
            Ok(resp) => {
                retry.reset();
                return Ok(resp);
            }
            Err(e) => {
                if e.retryable && retry.pause(&e.err.message) {
                    continue;
                }
                return Err(e.err);
            }
        }
    }
}

/// `bfhrf query --batch N`: one persistent wire-protocol-v2 session that
/// packs the query file into `batch`-sized frames and keeps up to
/// [`PIPELINE_WINDOW`] frames in flight. The output is the same
/// `query\tavg_rf` table single-query mode prints (indices renumbered
/// across frames), so it diffs cleanly against offline `bfhrf avgrf`; the
/// 0/1/3 exit-code contract is unchanged, with the first failing frame
/// aborting the session.
///
/// With a retry budget, a dropped connection (daemon restart, network
/// blip) or a `busy` shed reconnects after a backoff, re-runs the
/// handshake, and resends every unanswered frame. Frame sizing is fixed
/// by the **first** handshake, so rows land in the output exactly once
/// and the final table is byte-identical to an uninterrupted run. Each
/// answered frame restores the budget.
///
/// `--format bin` sessions negotiate the binary tree encoding in the
/// hello and run the taxa exchange before the first frame; the payload is
/// re-encoded per session because the server's namespace is only known
/// once connected (and could differ after a restart).
fn batched_avgrf(
    addr: &str,
    batch: usize,
    source: &TreeCollection,
    format: phylo_wire::WireFormat,
    flags: proto::QueryFlags,
    collection: Option<String>,
    mut retry: Retry,
) -> Result<CmdOutcome, CliError> {
    use phylo_wire::WireFormat;
    use proto::{Envelope, Request, Response, WireEncoding};
    use std::io::Write as _;

    /// Frames in flight at once: deep enough to hide a round trip, shallow
    /// enough that neither side buffers unboundedly.
    const PIPELINE_WINDOW: usize = 32;

    // Newick payloads never change between sessions; render them once.
    let newick_payload: Vec<String> = match format {
        WireFormat::Newick => source
            .trees
            .iter()
            .map(|t| phylo::write_newick(t, &source.taxa))
            .collect(),
        WireFormat::Bin => Vec::new(),
    };
    let encoding = match format {
        WireFormat::Newick => None,
        WireFormat::Bin => Some(WireEncoding::Bin),
    };
    let total = source.trees.len();

    let mut out = String::from("query\tavg_rf\n");
    let mut notes: Vec<String> = Vec::new();
    // Fixed after the first handshake; `None` until then.
    let mut plan: Option<(usize, usize)> = None; // (frame_size, n_frames)
    let mut read = 0usize; // frames fully answered and rendered

    'session: loop {
        let mut session = match open_batch_session(addr, encoding) {
            Ok(s) => s,
            Err(e) => {
                if e.retryable && retry.pause(&e.err.message) {
                    continue 'session;
                }
                return Err(e.err);
            }
        };
        let bin_payload: Vec<String>;
        let items: &[String] = match format {
            WireFormat::Newick => &newick_payload,
            WireFormat::Bin => {
                let labels = match fetch_server_taxa(&mut session, addr, collection.as_deref()) {
                    Ok(labels) => labels,
                    Err(e) => {
                        if e.retryable && retry.pause(&e.err.message) {
                            continue 'session;
                        }
                        return Err(e.err);
                    }
                };
                bin_payload = encode_payload_bin(source, &labels)?;
                &bin_payload
            }
        };
        let BatchSession {
            mut reader,
            mut writer,
            max_batch,
        } = session;
        let (frame_size, n_frames) = match plan {
            None => {
                let fs = batch.min(max_batch).max(1);
                let p = (fs, total.div_ceil(fs));
                plan = Some(p);
                p
            }
            Some((fs, _)) if fs > max_batch.max(1) => {
                // The replacement server advertises a smaller ceiling than
                // the frames we already rendered rows from; re-chunking
                // would renumber rows, so fail instead of emitting a table
                // that no uninterrupted run could produce.
                return Err(format!(
                    "server at {addr} restarted with a smaller batch ceiling ({max_batch} < \
                     {fs}); rerun the query"
                )
                .into());
            }
            Some(p) => p,
        };
        if read >= n_frames {
            break 'session;
        }
        let mut sent = read; // everything past `read` is unanswered: resend
        let failure: SessionError = loop {
            let mut send_err: Option<std::io::Error> = None;
            while sent < n_frames && sent - read < PIPELINE_WINDOW {
                let lo = sent * frame_size;
                let hi = total.min(lo + frame_size);
                let env = Envelope::v2(
                    Request::Batch {
                        queries: items[lo..hi].to_vec(),
                        flags,
                        collection: collection.clone(),
                    },
                    Some(sent as u64),
                );
                if let Err(e) = writer.write_all(format!("{}\n", env.to_json()).as_bytes()) {
                    send_err = Some(e);
                    break;
                }
                sent += 1;
            }
            if let Some(e) = send_err.or_else(|| writer.flush().err()) {
                break SessionError::transport(
                    format!("cannot send request to {addr}: {e}").into(),
                );
            }
            let (resp, id) = match read_batch_response(&mut reader, addr) {
                Ok(r) => r,
                Err(e) => break e,
            };
            match resp {
                Response::Scores {
                    scores,
                    notes: frame_notes,
                    ..
                } => {
                    if id != Some(read as u64) {
                        break SessionError::transport(
                            format!("server answered frame {id:?} where frame {read} was expected")
                                .into(),
                        );
                    }
                    let base = read * frame_size;
                    for row in &scores {
                        let _ = writeln!(out, "{}\t{:.6}", base + row.index, row.avg);
                    }
                    for n in frame_notes {
                        let n = format!("server: {n}");
                        if !notes.contains(&n) {
                            notes.push(n);
                        }
                    }
                    read += 1;
                    retry.reset();
                    if read >= n_frames {
                        break 'session;
                    }
                }
                Response::Error {
                    code,
                    outcome,
                    message,
                } => {
                    let err = CliError {
                        message: format!("server: [{}] {message}", outcome.as_str()),
                        code: server::protocol_code_to_exit(code.as_str()),
                    };
                    break if code == proto::ErrorCode::Busy {
                        SessionError::transport(err)
                    } else {
                        SessionError::fatal(err)
                    };
                }
                _ => {
                    break SessionError::transport(
                        "server answered a batch frame with an unexpected shape"
                            .to_string()
                            .into(),
                    )
                }
            }
        };
        if failure.retryable && retry.pause(&failure.err.message) {
            continue 'session;
        }
        return Err(failure.err);
    }
    Ok(CmdOutcome {
        stdout: out,
        notes,
        code: EXIT_OK,
    })
}

/// Render a successful server response in the same tab-separated shapes
/// the offline subcommands print, so outputs diff cleanly against
/// `bfhrf avgrf` / `bfhrf best`.
fn render_response(op: &str, resp: &json::Json) -> Result<String, CliError> {
    let field = |key: &str| -> Result<&json::Json, CliError> {
        resp.get(key)
            .ok_or_else(|| CliError::from(format!("response is missing {key:?}")))
    };
    match op {
        "avgrf" => {
            let mut out = String::from("query\tavg_rf\n");
            for row in field("scores")?.as_arr().unwrap_or(&[]) {
                let idx = row.get("index").and_then(json::Json::as_u64).unwrap_or(0);
                let avg = row
                    .get("avg")
                    .and_then(json::Json::as_f64)
                    .unwrap_or(f64::NAN);
                let _ = writeln!(out, "{idx}\t{avg:.6}");
            }
            Ok(out)
        }
        "best-query" => Ok(format!(
            "best_query\t{}\navg_rf\t{:.6}\ntotal_rf\t{}\n",
            field("best_index")?.as_u64().unwrap_or(0),
            field("avg")?.as_f64().unwrap_or(f64::NAN),
            field("total")?.as_u64().unwrap_or(0),
        )),
        "stats" => {
            let mut out = String::new();
            for key in [
                "generation",
                "n_trees",
                "n_taxa",
                "distinct",
                "sum",
                "wal_pending",
                "served",
            ] {
                let _ = writeln!(out, "{key}\t{}", field(key)?.as_u64().unwrap_or(0));
            }
            Ok(out)
        }
        "add" | "remove" => Ok(format!(
            "applied\t{}\nn_trees\t{}\n",
            field("applied")?.as_u64().unwrap_or(0),
            field("n_trees")?.as_u64().unwrap_or(0),
        )),
        "compact" => Ok(format!(
            "generation\t{}\ndistinct\t{}\n",
            field("generation")?.as_u64().unwrap_or(0),
            field("distinct")?.as_u64().unwrap_or(0),
        )),
        "ping" => {
            let mut out = String::new();
            for key in ["generation", "wal_pending", "uptime_ms"] {
                let _ = writeln!(out, "{key}\t{}", field(key)?.as_u64().unwrap_or(0));
            }
            // Catalog-aware daemons add the collection counts on v2 pongs;
            // rows appear only when present so pre-catalog servers render
            // byte-identically.
            for key in ["collections", "open_collections"] {
                if let Some(v) = resp.get(key).and_then(json::Json::as_u64) {
                    let _ = writeln!(out, "{key}\t{v}");
                }
            }
            Ok(out)
        }
        "xavgrf" => {
            let mut out = format!(
                "common_taxa\t{}\nquery\tavg_rf\n",
                field("common_taxa")?.as_u64().unwrap_or(0)
            );
            for row in field("scores")?.as_arr().unwrap_or(&[]) {
                let idx = row.get("index").and_then(json::Json::as_u64).unwrap_or(0);
                let avg = row
                    .get("avg")
                    .and_then(json::Json::as_f64)
                    .unwrap_or(f64::NAN);
                let _ = writeln!(out, "{idx}\t{avg:.6}");
            }
            Ok(out)
        }
        "catalog-create" => Ok(format!(
            "created\t{}\nn_trees\t{}\n",
            field("created")?.as_str().unwrap_or("?"),
            field("n_trees")?.as_u64().unwrap_or(0),
        )),
        "catalog-drop" => Ok(format!(
            "dropped\t{}\n",
            field("dropped")?.as_str().unwrap_or("?"),
        )),
        "catalog-list" => {
            let mut out = String::from("name\topen\tresident_bytes\n");
            for row in field("catalog")?.as_arr().unwrap_or(&[]) {
                let _ = writeln!(
                    out,
                    "{}\t{}\t{}",
                    row.get("name").and_then(json::Json::as_str).unwrap_or("?"),
                    row.get("open")
                        .and_then(json::Json::as_bool)
                        .unwrap_or(false),
                    row.get("resident_bytes")
                        .and_then(json::Json::as_u64)
                        .unwrap_or(0),
                );
            }
            Ok(out)
        }
        "taxa" => {
            let mut out = format!(
                "generation\t{}\ntaxon\tlabel\n",
                field("generation")?.as_u64().unwrap_or(0)
            );
            for (i, label) in field("taxa")?.as_arr().unwrap_or(&[]).iter().enumerate() {
                let _ = writeln!(out, "{i}\t{}", label.as_str().unwrap_or("?"));
            }
            Ok(out)
        }
        "shutdown" => Ok("shutdown\tok\n".to_string()),
        _ => unreachable!("ops are validated before the request is sent"),
    }
}

/// `bfhrf catalog <create|drop|list>`: administer a running daemon's
/// collection catalog over the v2 wire ops — verb-shaped sugar over
/// `query --op catalog-*` so scripts read like the operations they
/// perform.
fn cmd_catalog(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let Some(verb) = raw.first() else {
        return Err("catalog needs a verb: create, drop, list"
            .to_string()
            .into());
    };
    let rest = &raw[1..];
    let (op, knowns): (&str, &[&str]) = match verb.as_str() {
        "create" => ("catalog-create", &["addr", "port-file", "name", "trees"]),
        "drop" => ("catalog-drop", &["addr", "port-file", "name"]),
        "list" => ("catalog-list", &["addr", "port-file"]),
        other => {
            return Err(
                format!("unknown catalog verb {other:?} (expected create, drop, list)").into(),
            )
        }
    };
    let a = Args::parse(rest, &[])?;
    a.reject_unknown(knowns, &[])?;
    let addr = query_addr(&a)?;
    let mut fields: Vec<(&str, json::Json)> = vec![("v", 2u64.into()), ("op", op.into())];
    match verb.as_str() {
        "create" => {
            fields.push(("name", a.require("name")?.into()));
            if let Some(trees_path) = a.get("trees") {
                let payload = payload_from_file(trees_path)?;
                fields.push((
                    "trees",
                    json::Json::Arr(payload.into_iter().map(Into::into).collect()),
                ));
            }
        }
        "drop" => fields.push(("name", a.require("name")?.into())),
        _ => {}
    }
    let request = json::Json::obj(fields);
    let resp = send_request(&addr, &request)?;
    if resp.get("ok").and_then(json::Json::as_bool) != Some(true) {
        let code = resp
            .get("code")
            .and_then(json::Json::as_str)
            .unwrap_or("error");
        let outcome = resp
            .get("outcome")
            .and_then(json::Json::as_str)
            .unwrap_or(code);
        let message = resp
            .get("error")
            .and_then(json::Json::as_str)
            .unwrap_or("server reported an unspecified failure");
        return Err(CliError {
            message: format!("server: [{outcome}] {message}"),
            code: server::protocol_code_to_exit(code),
        });
    }
    let notes: Vec<String> = resp
        .get("notes")
        .and_then(json::Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|n| n.as_str().map(|s| format!("server: {s}")))
        .collect();
    let stdout = render_response(op, &resp)?;
    Ok(CmdOutcome {
        stdout,
        notes,
        code: EXIT_OK,
    })
}

/// `bfhrf stats`: fetch one `stats` snapshot from a running daemon and
/// render it for operators — the index header, then every metric series
/// (with scaled latency quantiles). `--json` prints the raw wire response
/// for scripts instead.
fn cmd_stats(raw: &[String]) -> Result<CmdOutcome, CliError> {
    let a = Args::parse(raw, &["json"])?;
    a.reject_unknown(&["addr", "port-file"], &["json"])?;
    let addr = query_addr(&a)?;
    let request = json::Json::obj(vec![("op", "stats".into())]);
    let resp = send_request(&addr, &request)?;
    if resp.get("ok").and_then(json::Json::as_bool) != Some(true) {
        let message = resp
            .get("error")
            .and_then(json::Json::as_str)
            .unwrap_or("server reported an unspecified failure");
        return Err(format!("server: {message}").into());
    }
    if a.flag("json") {
        return Ok(CmdOutcome::clean(format!("{resp}\n")));
    }
    let mut out = render_response("stats", &resp)?;
    if let Some(metrics) = resp.get("metrics") {
        out.push('\n');
        out.push_str(&render_metrics_text(metrics));
    }
    Ok(CmdOutcome::clean(out))
}

/// Render the `metrics` member of a `stats` response as the aligned text
/// table `phylo_obs::expose::to_text` produces server-side — recomputed
/// here from the wire JSON because the client only has the document.
fn render_metrics_text(metrics: &json::Json) -> String {
    let series = metrics
        .get("series")
        .and_then(json::Json::as_arr)
        .unwrap_or(&[]);
    let mut rows: Vec<(String, String)> = Vec::with_capacity(series.len());
    for s in series {
        let name = s.get("name").and_then(json::Json::as_str).unwrap_or("?");
        let mut key = name.to_string();
        if let Some(json::Json::Obj(pairs)) = s.get("labels") {
            if !pairs.is_empty() {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                    .collect();
                key.push_str(&format!("{{{}}}", inner.join(",")));
            }
        }
        let num = |field: &str| s.get(field).and_then(json::Json::as_f64).unwrap_or(0.0);
        let value = match s.get("kind").and_then(json::Json::as_str) {
            Some("histogram") => {
                let count = num("count");
                if count == 0.0 {
                    "count=0".to_string()
                } else {
                    let show: fn(f64) -> String = if name.ends_with("_ns") {
                        phylo_obs::expose::fmt_ns
                    } else {
                        |v: f64| format!("{v:.0}")
                    };
                    format!(
                        "count={count} mean={} p50={} p90={} p99={} max={}",
                        show(num("mean")),
                        show(num("p50")),
                        show(num("p90")),
                        show(num("p99")),
                        show(num("max")),
                    )
                }
            }
            _ => format!("{}", num("value")),
        };
        rows.push((key, value));
    }
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (key, value) in rows {
        let _ = writeln!(out, "{key:width$}  {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("bfhrf-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    fn runv(parts: &[&str]) -> Result<String, String> {
        run(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn runf(parts: &[&str]) -> Result<CmdOutcome, CliError> {
        run_full(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn avgrf_end_to_end() {
        let refs = tmp(
            "refs.nwk",
            "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));\n",
        );
        let queries = tmp("queries.nwk", "((A,B),(C,D));\n");
        let out = runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("0\t0.666667"), "got: {out}");
    }

    #[test]
    fn algorithms_agree_via_cli() {
        let refs = tmp(
            "refs2.nwk",
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n",
        );
        let base = ["--refs", refs.to_str().unwrap(), "--threads", "2"];
        let mut outs = Vec::new();
        for alg in ["bfhrf", "bfhrf-seq", "ds", "dsmp", "hashrf", "day"] {
            let mut argv = vec!["avgrf"];
            argv.extend_from_slice(&base);
            argv.extend_from_slice(&["--algorithm", alg]);
            outs.push(runv(&argv).unwrap());
        }
        for out in &outs[1..] {
            assert_eq!(&outs[0], out);
        }
    }

    #[test]
    fn build_modes_and_shards_agree() {
        let refs = tmp(
            "refs10.nwk",
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n",
        );
        let base = runv(&["avgrf", "--refs", refs.to_str().unwrap()]).unwrap();
        for extra in [
            &["--build-mode", "seq"][..],
            &["--build-mode", "parallel"][..],
            &["--build-mode", "sharded", "--shards", "4"][..],
            &["--shards", "7"][..],
        ] {
            let mut argv = vec!["avgrf", "--refs", refs.to_str().unwrap()];
            argv.extend_from_slice(extra);
            assert_eq!(base, runv(&argv).unwrap(), "with {extra:?}");
        }
        // build options are rejected outside the bfhrf algorithms, and
        // nonsense modes/shard counts are typed errors, not panics
        assert!(runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--algorithm",
            "ds",
            "--shards",
            "2"
        ])
        .unwrap_err()
        .contains("only apply"));
        assert!(runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--build-mode",
            "quantum"
        ])
        .unwrap_err()
        .contains("unknown build mode"));
        assert!(
            runv(&["avgrf", "--refs", refs.to_str().unwrap(), "--shards", "0"])
                .unwrap_err()
                .contains("at least 1")
        );
    }

    #[test]
    fn best_and_consensus() {
        let refs = tmp(
            "refs3.nwk",
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));\n",
        );
        let queries = tmp(
            "queries3.nwk",
            "((A,E),((C,D),(B,F)));\n((A,B),((C,D),(E,F)));\n",
        );
        let best = runv(&[
            "best",
            "--refs",
            refs.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .unwrap();
        assert!(best.contains("best_query\t1"), "got: {best}");

        let cons = runv(&["consensus", "--refs", refs.to_str().unwrap()]).unwrap();
        assert!(cons.ends_with(";\n"));
        assert!(cons.contains('A') && cons.contains('F'));
        let strict = runv(&["consensus", "--refs", refs.to_str().unwrap(), "--strict"]).unwrap();
        assert!(strict.ends_with(";\n"));
    }

    #[test]
    fn matrix_output_shape() {
        let refs = tmp("refs4.nwk", "((A,B),(C,D));\n((A,C),(B,D));\n");
        let out = runv(&["matrix", "--refs", refs.to_str().unwrap()]).unwrap();
        let rows: Vec<&str> = out.lines().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], "0\t2");
        assert_eq!(rows[1], "2\t0");
    }

    #[test]
    fn simulate_writes_parseable_file() {
        let dir = std::env::temp_dir().join("bfhrf-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("sim.nwk");
        let msg = runv(&[
            "simulate",
            "--taxa",
            "10",
            "--trees",
            "6",
            "--out",
            out_path.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(msg.contains("wrote 6 trees"));
        let coll = phylo_sim::datasets::read_collection(&out_path).unwrap();
        assert_eq!(coll.len(), 6);
        assert_eq!(coll.taxa.len(), 10);
    }

    #[test]
    fn error_paths_are_reported() {
        assert!(runv(&[]).is_err());
        assert!(runv(&["frobnicate"])
            .unwrap_err()
            .contains("unknown subcommand"));
        assert!(runv(&["avgrf"]).unwrap_err().contains("--refs"));
        assert!(runv(&["avgrf", "--refs", "/no/such/file.nwk"])
            .unwrap_err()
            .contains("cannot read"));
        let refs = tmp("refs5.nwk", "((A,B),(C,D));\n");
        assert!(runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--algorithm",
            "quantum"
        ])
        .unwrap_err()
        .contains("unknown algorithm"));
        assert!(runv(&[
            "consensus",
            "--refs",
            refs.to_str().unwrap(),
            "--threshold",
            "0.2"
        ])
        .is_err());
        assert!(
            runv(&["simulate", "--taxa", "3", "--trees", "5", "--out", "/tmp/x"])
                .unwrap_err()
                .contains("at least 4")
        );
    }

    #[test]
    fn normalized_and_halved_flags() {
        let refs = tmp("refs6.nwk", "((A,B),(C,D));\n((A,C),(B,D));\n");
        let plain = runv(&["avgrf", "--refs", refs.to_str().unwrap()]).unwrap();
        assert!(
            plain.contains("0\t1.000000"),
            "each tree: avg (0+2)/2: {plain}"
        );
        let halved = runv(&["avgrf", "--refs", refs.to_str().unwrap(), "--halved"]).unwrap();
        assert!(halved.contains("0\t0.500000"), "{halved}");
        let norm = runv(&["avgrf", "--refs", refs.to_str().unwrap(), "--normalized"]).unwrap();
        assert!(norm.contains("0\t0.500000"), "1 / (2·(4−3)) = 0.5: {norm}");
    }

    #[test]
    fn common_taxa_flag() {
        let refs = tmp(
            "refs7.nwk",
            "(((A,B),G),((C,D),(E,F)));\n(((A,C),B),((D,G),(E,F)));\n",
        );
        let queries = tmp("queries7.nwk", "(((A,B),H),((C,D),(E,F)));\n");
        let out = runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--common-taxa",
        ])
        .unwrap();
        assert!(out.contains("# common taxa: 6 of 7"), "got: {out}");
    }

    #[test]
    fn lenient_run_is_partial_with_identical_output() {
        let clean = tmp(
            "clean_h.nwk",
            "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));\n",
        );
        let dirty = tmp(
            "dirty_h.nwk",
            "((A,B),(C,D));\n(Zed,;\n((A,B),(C,D));\n((A,C),(B,D);\n((A,C),(B,D));\n",
        );
        let want = runf(&["avgrf", "--refs", clean.to_str().unwrap()]).unwrap();
        assert_eq!(want.code, EXIT_OK);
        assert!(want.notes.is_empty());
        // strict run on the dirty file fails with the generic error code
        let strict = runf(&["avgrf", "--refs", dirty.to_str().unwrap()]).unwrap_err();
        assert_eq!(strict.code, EXIT_ERROR);
        // lenient run: same stdout as the pre-cleaned file, partial exit
        // code, every skip reported
        let got = runf(&["avgrf", "--refs", dirty.to_str().unwrap(), "--lenient"]).unwrap();
        assert_eq!(got.code, EXIT_PARTIAL);
        assert_eq!(got.stdout, want.stdout);
        assert!(
            got.notes
                .iter()
                .any(|n| n.contains("5 records, 3 accepted, 2 skipped")),
            "{:?}",
            got.notes
        );
        assert_eq!(
            got.notes
                .iter()
                .filter(|n| n.contains("skipped record"))
                .count(),
            2
        );
    }

    #[test]
    fn max_errors_limits_lenient_runs() {
        let dirty = tmp("dirty_lim.nwk", "(A,;\n(B,;\n((A,B),(C,D));\n");
        let err = runf(&[
            "avgrf",
            "--refs",
            dirty.to_str().unwrap(),
            "--lenient",
            "--max-errors",
            "1",
        ])
        .unwrap_err();
        assert_eq!(err.code, EXIT_ERROR);
        assert!(err.message.contains("exceed the limit"), "{}", err.message);
        let err = runf(&[
            "avgrf",
            "--refs",
            dirty.to_str().unwrap(),
            "--max-errors",
            "1",
        ])
        .unwrap_err();
        assert!(err.message.contains("--lenient"), "{}", err.message);
    }

    #[test]
    fn matrix_budget_failure_exits_3() {
        let refs = tmp("refs_budget.nwk", "((A,B),(C,D));\n((A,C),(B,D));\n");
        let err = runf(&[
            "matrix",
            "--refs",
            refs.to_str().unwrap(),
            "--mem-budget",
            "1",
        ])
        .unwrap_err();
        assert_eq!(err.code, EXIT_BUDGET);
        assert!(err.message.contains("budget"), "{}", err.message);
    }

    #[test]
    fn timeout_zero_cancels_with_exit_3() {
        let refs = tmp("refs_timeout.nwk", "((A,B),(C,D));\n((A,C),(B,D));\n");
        let err = runf(&["avgrf", "--refs", refs.to_str().unwrap(), "--timeout", "0"]).unwrap_err();
        assert_eq!(err.code, EXIT_BUDGET);
        assert!(err.message.contains("deadline"), "{}", err.message);
    }

    #[test]
    fn hashrf_degrades_under_budget_with_note() {
        let refs = tmp(
            "refs_degrade.nwk",
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n",
        );
        let want = runf(&["avgrf", "--refs", refs.to_str().unwrap()]).unwrap();
        // A budget below HashRF's bucket-table estimate but comfortably
        // above the fallback BFH spill: hashrf degrades, answers match.
        let got = runf(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--algorithm",
            "hashrf",
            "--mem-budget",
            "2000",
        ])
        .unwrap();
        assert_eq!(got.code, EXIT_OK);
        assert_eq!(got.stdout, want.stdout);
        assert!(
            got.notes
                .iter()
                .any(|n| n.contains("degraded hashrf -> bfhrf")),
            "{:?}",
            got.notes
        );
        // With a generous budget hashrf runs as requested, no notes.
        let plain = runf(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--algorithm",
            "hashrf",
            "--mem-budget",
            "100000000",
        ])
        .unwrap();
        assert!(plain.notes.is_empty());
        assert_eq!(plain.stdout, want.stdout);
    }

    #[test]
    fn consensus_and_matrix_accept_lenient() {
        let dirty = tmp(
            "cons_dirty.nwk",
            "((A,B),(C,D));\n(Broken,;\n((A,B),(C,D));\n",
        );
        let cons = runf(&["consensus", "--refs", dirty.to_str().unwrap(), "--lenient"]).unwrap();
        assert_eq!(cons.code, EXIT_PARTIAL);
        assert!(cons.stdout.ends_with(";\n"));
        assert!(cons.notes[0].contains("1 skipped"), "{:?}", cons.notes);
        let m = runf(&["matrix", "--refs", dirty.to_str().unwrap(), "--lenient"]).unwrap();
        assert_eq!(m.code, EXIT_PARTIAL);
        assert_eq!(m.stdout.lines().count(), 2, "two accepted trees");
    }

    #[test]
    fn best_with_no_queries_is_a_typed_error() {
        let refs = tmp("refs_best_empty.nwk", "((A,B),(C,D));\n");
        let empty = tmp("queries_empty.nwk", "");
        let err = runf(&[
            "best",
            "--refs",
            refs.to_str().unwrap(),
            "--queries",
            empty.to_str().unwrap(),
        ])
        .unwrap_err();
        // surfaced upstream as CoreError::EmptyQuery; the best_query
        // fallback path is a typed error either way, never a panic
        assert_eq!(err.code, EXIT_ERROR);
        assert!(err.message.contains("empty"), "{}", err.message);
    }

    #[test]
    fn help_lists_subcommands() {
        let h = runv(&["help"]).unwrap();
        for cmd in [
            "avgrf",
            "best",
            "consensus",
            "matrix",
            "simulate",
            "support",
            "cluster",
        ] {
            assert!(h.contains(cmd));
        }
        for opt in ["--lenient", "--max-errors", "--mem-budget", "--timeout"] {
            assert!(h.contains(opt), "usage must document {opt}");
        }
        assert!(h.contains("exit codes"));
    }

    #[test]
    fn support_subcommand() {
        let refs = tmp(
            "refs8.nwk",
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),(C,(D,(E,F))));\n((A,C),((B,D),(E,F)));\n",
        );
        let focal = tmp("focal8.nwk", "((A,B),((C,D),(E,F)));\n");
        let out = runv(&[
            "support",
            "--refs",
            refs.to_str().unwrap(),
            "--tree",
            focal.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("0.75"), "{out}");
        assert!(out.lines().next().unwrap().ends_with(';'), "{out}");
        assert!(out.contains("fraction"));
    }

    #[test]
    fn cluster_subcommand() {
        let refs = tmp(
            "refs9.nwk",
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,E),((B,F),(C,D)));\n((A,E),((B,F),(C,D)));\n",
        );
        let out = runv(&["cluster", "--refs", refs.to_str().unwrap(), "--k", "2"]).unwrap();
        assert!(out.contains("k\t2"), "{out}");
        assert!(out.contains("silhouette"), "{out}");
        // trees 0,1 together and 2,3 together
        let rows: Vec<(usize, usize)> = out
            .lines()
            .skip_while(|l| !l.starts_with("tree"))
            .skip(1)
            .map(|l| {
                let mut parts = l.split('\t');
                (
                    parts.next().unwrap().parse().unwrap(),
                    parts.next().unwrap().parse().unwrap(),
                )
            })
            .collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].1, rows[1].1);
        assert_eq!(rows[2].1, rows[3].1);
        assert_ne!(rows[0].1, rows[2].1);
        // bad k is rejected
        assert!(runv(&["cluster", "--refs", refs.to_str().unwrap(), "--k", "9"]).is_err());
    }

    #[test]
    fn convert_round_trips_between_encodings() {
        let newick = "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n";
        let src = tmp("convert-src.nwk", newick);
        let dir = src.parent().unwrap().to_path_buf();
        let bin = dir.join("convert-out.phw");
        let back = dir.join("convert-back.nwk");

        let report = runv(&[
            "convert",
            "--in",
            src.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--format",
            "bin",
        ])
        .unwrap();
        assert!(report.contains("in_format\tnewick"), "{report}");
        assert!(report.contains("out_format\tbin"), "{report}");
        assert!(report.contains("n_trees\t3"), "{report}");
        let bytes = std::fs::read(&bin).unwrap();
        assert_eq!(&bytes[..8], b"PHYLOWIR");

        // bin → Newick reproduces the canonical rendering byte for byte.
        let report = runv(&[
            "convert",
            "--in",
            bin.to_str().unwrap(),
            "--out",
            back.to_str().unwrap(),
            "--format",
            "newick",
        ])
        .unwrap();
        assert!(report.contains("in_format\tbin"), "{report}");
        assert_eq!(std::fs::read_to_string(&back).unwrap(), newick);

        // Every offline consumer sniffs: avgrf over the binary file
        // answers byte-identically to the Newick original.
        let a = runv(&["avgrf", "--refs", src.to_str().unwrap()]).unwrap();
        let b = runv(&["avgrf", "--refs", bin.to_str().unwrap()]).unwrap();
        assert_eq!(a, b);

        // Unknown target format is a typed error.
        let err = runf(&[
            "convert",
            "--in",
            src.to_str().unwrap(),
            "--out",
            back.to_str().unwrap(),
            "--format",
            "xml",
        ])
        .expect_err("xml must be rejected");
        assert!(err.message.contains("unknown format"), "{}", err.message);
    }

    #[test]
    fn index_build_format_pin_and_inspect_sections() {
        let newick = "((A,B),(C,D));\n((A,C),(B,D));\n";
        let src = tmp("buildfmt.nwk", newick);
        let dir = src.parent().unwrap().to_path_buf();
        let bin = dir.join("buildfmt.phw");
        runv(&[
            "convert",
            "--in",
            src.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--format",
            "bin",
        ])
        .unwrap();

        // A mismatched pin fails before any index is written…
        let idx = dir.join("buildfmt-index");
        let _ = std::fs::remove_dir_all(&idx);
        let err = runf(&[
            "index",
            "build",
            "--refs",
            bin.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--format",
            "newick",
        ])
        .expect_err("format mismatch must fail");
        assert!(err.message.contains("carries bin"), "{}", err.message);
        assert!(!idx.exists());

        // …while the matching pin builds and reports the format row.
        let out = runv(&[
            "index",
            "build",
            "--refs",
            bin.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--format",
            "bin",
        ])
        .unwrap();
        assert!(out.contains("format\tbin"), "{out}");
        assert!(out.contains("n_trees\t2"), "{out}");

        // inspect reports both on-disk encodings with versions and sizes;
        // a fresh build writes the frozen sidecar alongside the snapshot.
        let out = runv(&[
            "index",
            "inspect",
            "--index",
            idx.to_str().unwrap(),
            "--check",
        ])
        .unwrap();
        assert!(out.contains("snapshot_format\tBFHSNAP/v"), "{out}");
        assert!(out.contains("snapshot_bytes\t"), "{out}");
        assert!(out.contains("check\tok"), "{out}");
        if out.contains("frozen_format") {
            assert!(out.contains("frozen_format\tBFHFROZ/v"), "{out}");
            assert!(out.contains("frozen_pool_bytes\t"), "{out}");
            assert!(out.contains("frozen_check\tok"), "{out}");
        } else {
            assert!(out.contains("frozen_sidecar\tabsent"), "{out}");
        }
    }

    #[test]
    fn query_format_validation_is_client_side() {
        // Bad format name and non-tree ops fail before any connection is
        // attempted (the addr below is never dialed).
        let err = runf(&[
            "query",
            "--addr",
            "127.0.0.1:1",
            "--op",
            "stats",
            "--format",
            "bin",
        ])
        .expect_err("stats cannot ride the bin encoding");
        assert!(
            err.message.contains("--format bin only applies"),
            "{}",
            err.message
        );
        let err = runf(&["query", "--addr", "127.0.0.1:1", "--format", "tsv"])
            .expect_err("unknown format must fail");
        assert!(err.message.contains("unknown format"), "{}", err.message);
    }
}
