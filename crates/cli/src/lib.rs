//! Command implementations for the `bfhrf` command-line tool.
//!
//! The paper emphasizes an "easy to use installation and interface for
//! calculating the average RF of query trees against a collection of
//! reference trees"; this crate is that interface. Each subcommand is a
//! function from parsed [`args::Args`] to a printable report, so the whole
//! surface is unit-testable without spawning processes.
//!
//! ```text
//! bfhrf avgrf     --refs refs.nwk [--queries q.nwk]
//!                 [--algorithm bfhrf|bfhrf-seq|ds|dsmp|hashrf|day]
//!                 [--build-mode seq|parallel|sharded] [--shards K]
//!                 [--threads N] [--halved] [--normalized] [--common-taxa]
//! bfhrf best      --refs refs.nwk --queries q.nwk
//! bfhrf consensus --refs refs.nwk [--threshold 0.5 | --strict]
//! bfhrf matrix    --refs refs.nwk [--budget-mb M]
//! bfhrf simulate  --taxa N --trees R --out file.nwk [--seed S] [--pop-scale P]
//! ```

pub mod args;

use args::Args;
use bfhrf::{
    best_query, Bfh, BfhBuilder, BfhrfComparator, Comparator, DayComparator, HashRfComparator,
    HashRfConfig, SetComparator,
};
use phylo::{TaxaPolicy, TreeCollection};
use std::fmt::Write as _;
use std::path::Path;

/// Top-level dispatch: `argv[0]` is the subcommand.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some(cmd) = argv.first() else {
        return Err(usage());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "avgrf" => cmd_avgrf(rest),
        "best" => cmd_best(rest),
        "consensus" => cmd_consensus(rest),
        "matrix" => cmd_matrix(rest),
        "simulate" => cmd_simulate(rest),
        "support" => cmd_support(rest),
        "cluster" => cmd_cluster(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown subcommand {other:?}\n\n{}", usage())),
    }
}

/// The help text.
pub fn usage() -> String {
    "bfhrf — scalable average Robinson-Foulds for tree collections\n\
     \n\
     USAGE: bfhrf <subcommand> [options]\n\
     \n\
     avgrf      average RF of each query tree against the references\n\
     \x20          --refs FILE          reference trees (Newick, ';' separated)\n\
     \x20          --queries FILE       query trees (default: the references)\n\
     \x20          --algorithm NAME     bfhrf (default) | bfhrf-seq | ds | dsmp | hashrf | day\n\
     \x20          --build-mode MODE    hash build: seq | parallel | sharded\n\
     \x20          --shards K           shard count for the sharded build\n\
     \x20                               (default: thread count, min 2)\n\
     \x20          --threads N          rayon thread count (default: all cores)\n\
     \x20          --halved             report the divide-by-2 RF convention\n\
     \x20          --normalized         divide by the maximum 2(n-3)\n\
     \x20          --common-taxa        restrict to taxa common to all trees\n\
     best       index + score of the lowest-average query tree\n\
     \x20          --refs FILE --queries FILE [--threads N]\n\
     consensus  majority-rule, strict, or greedy consensus of the references\n\
     \x20          --refs FILE [--threshold T] [--strict | --greedy]\n\
     matrix     all-vs-all RF matrix (tab-separated)\n\
     \x20          --refs FILE [--budget-mb M]\n\
     simulate   coalescent gene-tree collection\n\
     \x20          --taxa N --trees R --out FILE [--seed S] [--pop-scale P]\n\
     support    annotate a focal tree with split support from the references\n\
     \x20          --refs FILE --tree FILE\n\
     cluster    k-medoids clustering of the collection by RF distance\n\
     \x20          --refs FILE --k K [--budget-mb M]\n"
        .to_string()
}

fn load(path: &str) -> Result<TreeCollection, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    TreeCollection::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_queries_against(path: &str, refs: &mut TreeCollection) -> Result<Vec<phylo::Tree>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    phylo::read_trees_from_str(&text, &mut refs.taxa, TaxaPolicy::Require)
        .map_err(|e| format!("{path}: {e}"))
}

/// Run `f` on a rayon pool with `threads` workers (or the global pool).
fn with_threads<T: Send>(
    threads: Option<usize>,
    f: impl FnOnce() -> T + Send,
) -> Result<T, String> {
    match threads {
        None => Ok(f()),
        Some(k) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(k)
                .build()
                .map_err(|e| format!("cannot build thread pool: {e}"))?;
            Ok(pool.install(f))
        }
    }
}

/// Resolve `--build-mode` / `--shards` into a configured [`BfhBuilder`].
///
/// Defaults are per-algorithm: `bfhrf` builds sharded (the fast path),
/// `bfhrf-seq` builds sequentially. An explicit `--build-mode` or
/// `--shards` overrides either.
fn resolve_builder(
    mode: Option<&str>,
    shards: Option<usize>,
    default_mode: &str,
) -> Result<BfhBuilder, String> {
    let mode = mode.unwrap_or(default_mode);
    let default_shards = match mode {
        "seq" | "parallel" => 1,
        "sharded" => rayon::current_num_threads().max(2),
        other => {
            return Err(format!(
                "unknown build mode {other:?} (expected seq, parallel, sharded)"
            ))
        }
    };
    Ok(BfhBuilder::new()
        .parallel(mode != "seq")
        .shards(shards.unwrap_or(default_shards)))
}

fn cmd_avgrf(raw: &[String]) -> Result<String, String> {
    let a = Args::parse(raw, &["halved", "normalized", "common-taxa"])?;
    a.reject_unknown(
        &[
            "refs",
            "queries",
            "algorithm",
            "build-mode",
            "shards",
            "threads",
        ],
        &["halved", "normalized", "common-taxa"],
    )?;
    let mut refs = load(a.require("refs")?)?;
    let threads: Option<usize> = a.get_parsed("threads")?;
    let algorithm = a.get("algorithm").unwrap_or("bfhrf");
    let build_mode = a.get("build-mode");
    let shards: Option<usize> = a.get_parsed("shards")?;

    if a.flag("common-taxa") {
        let queries = match a.get("queries") {
            Some(p) => load(p)?,
            None => refs.clone(),
        };
        let out =
            bfhrf::variable_taxa::common_taxa_rf(&refs, &queries).map_err(|e| e.to_string())?;
        let mut report = format!(
            "# common taxa: {} of {} reference labels\n",
            out.taxa.len(),
            refs.taxa.len()
        );
        render_scores(&mut report, &out.scores, out.taxa.len(), &a);
        return Ok(report);
    }

    let queries = match a.get("queries") {
        Some(p) => load_queries_against(p, &mut refs)?,
        None => refs.trees.clone(),
    };
    let n = refs.taxa.len();
    if !matches!(algorithm, "bfhrf" | "bfhrf-seq") && (build_mode.is_some() || shards.is_some()) {
        return Err(format!(
            "--build-mode/--shards only apply to the bfhrf algorithms, not {algorithm:?}"
        ));
    }
    let scores = with_threads(threads, || -> Result<Vec<bfhrf::QueryScore>, String> {
        match algorithm {
            "bfhrf" | "bfhrf-seq" => {
                let default_mode = if algorithm == "bfhrf" {
                    "sharded"
                } else {
                    "seq"
                };
                let builder = resolve_builder(build_mode, shards, default_mode)?;
                let bfh = builder
                    .from_trees(&refs.trees, &refs.taxa)
                    .map_err(|e| e.to_string())?;
                BfhrfComparator::new(&bfh, &refs.taxa)
                    .parallel(algorithm == "bfhrf")
                    .average_all(&queries)
                    .map_err(|e| e.to_string())
            }
            "ds" => SetComparator::new(&refs.trees, &refs.taxa)
                .average_all(&queries)
                .map_err(|e| e.to_string()),
            "dsmp" => SetComparator::new(&refs.trees, &refs.taxa)
                .parallel(true)
                .average_all(&queries)
                .map_err(|e| e.to_string()),
            "hashrf" => HashRfComparator::new(&refs.trees, &refs.taxa, HashRfConfig::default())
                .average_all(&queries)
                .map_err(|e| e.to_string()),
            "day" => DayComparator::new(&refs.trees, &refs.taxa)
                .average_all(&queries)
                .map_err(|e| e.to_string()),
            other => Err(format!(
                "unknown algorithm {other:?} (expected bfhrf, bfhrf-seq, ds, dsmp, hashrf, day)"
            )),
        }
    })??;
    let mut report = String::new();
    render_scores(&mut report, &scores, n, &a);
    Ok(report)
}

fn render_scores(out: &mut String, scores: &[bfhrf::QueryScore], n_taxa: usize, a: &Args) {
    let _ = writeln!(out, "query\tavg_rf");
    for s in scores {
        let mut v = if a.flag("normalized") {
            bfhrf::variants::normalized_average(&s.rf, n_taxa)
        } else {
            s.rf.average()
        };
        if a.flag("halved") {
            v /= 2.0;
        }
        let _ = writeln!(out, "{}\t{v:.6}", s.index);
    }
}

fn cmd_best(raw: &[String]) -> Result<String, String> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["refs", "queries", "threads"], &[])?;
    let mut refs = load(a.require("refs")?)?;
    let queries = load_queries_against(a.require("queries")?, &mut refs)?;
    let threads: Option<usize> = a.get_parsed("threads")?;
    let scores = with_threads(threads, || -> Result<Vec<bfhrf::QueryScore>, String> {
        let bfh = resolve_builder(None, None, "sharded")?
            .from_trees(&refs.trees, &refs.taxa)
            .map_err(|e| e.to_string())?;
        BfhrfComparator::new(&bfh, &refs.taxa)
            .parallel(true)
            .average_all(&queries)
            .map_err(|e| e.to_string())
    })??;
    let best = best_query(&scores).expect("nonempty scores");
    Ok(format!(
        "best_query\t{}\navg_rf\t{:.6}\ntotal_rf\t{}\n",
        best.index,
        best.rf.average(),
        best.rf.total()
    ))
}

fn cmd_consensus(raw: &[String]) -> Result<String, String> {
    let a = Args::parse(raw, &["strict", "greedy"])?;
    a.reject_unknown(&["refs", "threshold"], &["strict", "greedy"])?;
    if a.flag("strict") && a.flag("greedy") {
        return Err("--strict and --greedy are mutually exclusive".into());
    }
    let refs = load(a.require("refs")?)?;
    let bfh = Bfh::build(&refs.trees, &refs.taxa);
    let tree = if a.flag("strict") {
        bfhrf::consensus::strict_consensus(&bfh, &refs.taxa)
    } else if a.flag("greedy") {
        bfhrf::consensus::greedy_consensus(&bfh, &refs.taxa)
    } else {
        let threshold: f64 = a.get_parsed("threshold")?.unwrap_or(0.5);
        bfhrf::consensus::majority_consensus(&bfh, &refs.taxa, threshold)
    }
    .map_err(|e| e.to_string())?;
    Ok(format!("{}\n", phylo::write_newick(&tree, &refs.taxa)))
}

fn cmd_matrix(raw: &[String]) -> Result<String, String> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["refs", "budget-mb"], &[])?;
    let refs = load(a.require("refs")?)?;
    let budget_mb: usize = a.get_parsed("budget-mb")?.unwrap_or(4096);
    let m = bfhrf::matrix::rf_matrix_exact(&refs.trees, &refs.taxa, budget_mb << 20)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    for i in 0..m.size() {
        for j in 0..m.size() {
            if j > 0 {
                out.push('\t');
            }
            let _ = write!(out, "{}", m.get(i, j));
        }
        out.push('\n');
    }
    Ok(out)
}

fn cmd_support(raw: &[String]) -> Result<String, String> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["refs", "tree"], &[])?;
    let mut refs = load(a.require("refs")?)?;
    let focal_trees = load_queries_against(a.require("tree")?, &mut refs)?;
    let Some(focal) = focal_trees.first() else {
        return Err("the --tree file contains no tree".into());
    };
    let bfh = bfhrf::Bfh::build(&refs.trees, &refs.taxa);
    let annotated = bfhrf::support::write_newick_with_support(focal, &refs.taxa, &bfh);
    let supports = bfhrf::support::edge_support(focal, &refs.taxa, &bfh);
    let mut out = format!("{annotated}\n");
    let _ = writeln!(out, "edge\tcount\tfraction");
    for (i, s) in supports.iter().enumerate() {
        let _ = writeln!(out, "{i}\t{}\t{:.4}", s.count, s.fraction);
    }
    Ok(out)
}

fn cmd_cluster(raw: &[String]) -> Result<String, String> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["refs", "k", "budget-mb"], &[])?;
    let refs = load(a.require("refs")?)?;
    let k: usize = a.get_parsed("k")?.ok_or("missing required option --k")?;
    if k == 0 || k > refs.len() {
        return Err(format!("--k must be in 1..={}", refs.len()));
    }
    let budget_mb: usize = a.get_parsed("budget-mb")?.unwrap_or(4096);
    let m = bfhrf::matrix::rf_matrix_exact(&refs.trees, &refs.taxa, budget_mb << 20)
        .map_err(|e| e.to_string())?;
    let c = bfhrf::cluster::k_medoids(&m, k);
    let sil = bfhrf::cluster::silhouette(&m, &c.assignment, k);
    let mut out = format!(
        "k\t{k}\ncost\t{}\nsilhouette\t{sil:.4}\nmedoids\t{:?}\n",
        c.cost, c.medoids
    );
    let _ = writeln!(out, "tree\tcluster");
    for (i, &cl) in c.assignment.iter().enumerate() {
        let _ = writeln!(out, "{i}\t{cl}");
    }
    Ok(out)
}

fn cmd_simulate(raw: &[String]) -> Result<String, String> {
    let a = Args::parse(raw, &[])?;
    a.reject_unknown(&["taxa", "trees", "out", "seed", "pop-scale"], &[])?;
    let n: usize = a
        .get_parsed("taxa")?
        .ok_or("missing required option --taxa")?;
    let r: usize = a
        .get_parsed("trees")?
        .ok_or("missing required option --trees")?;
    let out_path = a.require("out")?;
    let seed: u64 = a.get_parsed("seed")?.unwrap_or(42);
    let pop_scale: f64 = a.get_parsed("pop-scale")?.unwrap_or(0.5);
    if n < 4 {
        return Err("--taxa must be at least 4".into());
    }
    let mut spec = phylo_sim::DatasetSpec::new("cli", n, r, seed);
    spec.pop_scale = pop_scale;
    let coll = phylo_sim::generate(&spec);
    phylo_sim::datasets::write_collection(Path::new(out_path), &coll)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(format!(
        "wrote {r} trees on {n} taxa to {out_path} (seed {seed}, pop-scale {pop_scale})\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("bfhrf-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    fn runv(parts: &[&str]) -> Result<String, String> {
        run(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn avgrf_end_to_end() {
        let refs = tmp(
            "refs.nwk",
            "((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));\n",
        );
        let queries = tmp("queries.nwk", "((A,B),(C,D));\n");
        let out = runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("0\t0.666667"), "got: {out}");
    }

    #[test]
    fn algorithms_agree_via_cli() {
        let refs = tmp(
            "refs2.nwk",
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n",
        );
        let base = ["--refs", refs.to_str().unwrap(), "--threads", "2"];
        let mut outs = Vec::new();
        for alg in ["bfhrf", "bfhrf-seq", "ds", "dsmp", "hashrf", "day"] {
            let mut argv = vec!["avgrf"];
            argv.extend_from_slice(&base);
            argv.extend_from_slice(&["--algorithm", alg]);
            outs.push(runv(&argv).unwrap());
        }
        for out in &outs[1..] {
            assert_eq!(&outs[0], out);
        }
    }

    #[test]
    fn build_modes_and_shards_agree() {
        let refs = tmp(
            "refs10.nwk",
            "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n",
        );
        let base = runv(&["avgrf", "--refs", refs.to_str().unwrap()]).unwrap();
        for extra in [
            &["--build-mode", "seq"][..],
            &["--build-mode", "parallel"][..],
            &["--build-mode", "sharded", "--shards", "4"][..],
            &["--shards", "7"][..],
        ] {
            let mut argv = vec!["avgrf", "--refs", refs.to_str().unwrap()];
            argv.extend_from_slice(extra);
            assert_eq!(base, runv(&argv).unwrap(), "with {extra:?}");
        }
        // build options are rejected outside the bfhrf algorithms, and
        // nonsense modes/shard counts are typed errors, not panics
        assert!(runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--algorithm",
            "ds",
            "--shards",
            "2"
        ])
        .unwrap_err()
        .contains("only apply"));
        assert!(runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--build-mode",
            "quantum"
        ])
        .unwrap_err()
        .contains("unknown build mode"));
        assert!(
            runv(&["avgrf", "--refs", refs.to_str().unwrap(), "--shards", "0"])
                .unwrap_err()
                .contains("at least 1")
        );
    }

    #[test]
    fn best_and_consensus() {
        let refs = tmp(
            "refs3.nwk",
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),((C,E),(D,F)));\n",
        );
        let queries = tmp(
            "queries3.nwk",
            "((A,E),((C,D),(B,F)));\n((A,B),((C,D),(E,F)));\n",
        );
        let best = runv(&[
            "best",
            "--refs",
            refs.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .unwrap();
        assert!(best.contains("best_query\t1"), "got: {best}");

        let cons = runv(&["consensus", "--refs", refs.to_str().unwrap()]).unwrap();
        assert!(cons.ends_with(";\n"));
        assert!(cons.contains('A') && cons.contains('F'));
        let strict = runv(&["consensus", "--refs", refs.to_str().unwrap(), "--strict"]).unwrap();
        assert!(strict.ends_with(";\n"));
    }

    #[test]
    fn matrix_output_shape() {
        let refs = tmp("refs4.nwk", "((A,B),(C,D));\n((A,C),(B,D));\n");
        let out = runv(&["matrix", "--refs", refs.to_str().unwrap()]).unwrap();
        let rows: Vec<&str> = out.lines().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], "0\t2");
        assert_eq!(rows[1], "2\t0");
    }

    #[test]
    fn simulate_writes_parseable_file() {
        let dir = std::env::temp_dir().join("bfhrf-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("sim.nwk");
        let msg = runv(&[
            "simulate",
            "--taxa",
            "10",
            "--trees",
            "6",
            "--out",
            out_path.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(msg.contains("wrote 6 trees"));
        let coll = phylo_sim::datasets::read_collection(&out_path).unwrap();
        assert_eq!(coll.len(), 6);
        assert_eq!(coll.taxa.len(), 10);
    }

    #[test]
    fn error_paths_are_reported() {
        assert!(runv(&[]).is_err());
        assert!(runv(&["frobnicate"])
            .unwrap_err()
            .contains("unknown subcommand"));
        assert!(runv(&["avgrf"]).unwrap_err().contains("--refs"));
        assert!(runv(&["avgrf", "--refs", "/no/such/file.nwk"])
            .unwrap_err()
            .contains("cannot read"));
        let refs = tmp("refs5.nwk", "((A,B),(C,D));\n");
        assert!(runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--algorithm",
            "quantum"
        ])
        .unwrap_err()
        .contains("unknown algorithm"));
        assert!(runv(&[
            "consensus",
            "--refs",
            refs.to_str().unwrap(),
            "--threshold",
            "0.2"
        ])
        .is_err());
        assert!(
            runv(&["simulate", "--taxa", "3", "--trees", "5", "--out", "/tmp/x"])
                .unwrap_err()
                .contains("at least 4")
        );
    }

    #[test]
    fn normalized_and_halved_flags() {
        let refs = tmp("refs6.nwk", "((A,B),(C,D));\n((A,C),(B,D));\n");
        let plain = runv(&["avgrf", "--refs", refs.to_str().unwrap()]).unwrap();
        assert!(
            plain.contains("0\t1.000000"),
            "each tree: avg (0+2)/2: {plain}"
        );
        let halved = runv(&["avgrf", "--refs", refs.to_str().unwrap(), "--halved"]).unwrap();
        assert!(halved.contains("0\t0.500000"), "{halved}");
        let norm = runv(&["avgrf", "--refs", refs.to_str().unwrap(), "--normalized"]).unwrap();
        assert!(norm.contains("0\t0.500000"), "1 / (2·(4−3)) = 0.5: {norm}");
    }

    #[test]
    fn common_taxa_flag() {
        let refs = tmp(
            "refs7.nwk",
            "(((A,B),G),((C,D),(E,F)));\n(((A,C),B),((D,G),(E,F)));\n",
        );
        let queries = tmp("queries7.nwk", "(((A,B),H),((C,D),(E,F)));\n");
        let out = runv(&[
            "avgrf",
            "--refs",
            refs.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--common-taxa",
        ])
        .unwrap();
        assert!(out.contains("# common taxa: 6 of 7"), "got: {out}");
    }

    #[test]
    fn help_lists_subcommands() {
        let h = runv(&["help"]).unwrap();
        for cmd in [
            "avgrf",
            "best",
            "consensus",
            "matrix",
            "simulate",
            "support",
            "cluster",
        ] {
            assert!(h.contains(cmd));
        }
    }

    #[test]
    fn support_subcommand() {
        let refs = tmp(
            "refs8.nwk",
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,B),(C,(D,(E,F))));\n((A,C),((B,D),(E,F)));\n",
        );
        let focal = tmp("focal8.nwk", "((A,B),((C,D),(E,F)));\n");
        let out = runv(&[
            "support",
            "--refs",
            refs.to_str().unwrap(),
            "--tree",
            focal.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("0.75"), "{out}");
        assert!(out.lines().next().unwrap().ends_with(';'), "{out}");
        assert!(out.contains("fraction"));
    }

    #[test]
    fn cluster_subcommand() {
        let refs = tmp(
            "refs9.nwk",
            "((A,B),((C,D),(E,F)));\n((A,B),((C,D),(E,F)));\n((A,E),((B,F),(C,D)));\n((A,E),((B,F),(C,D)));\n",
        );
        let out = runv(&["cluster", "--refs", refs.to_str().unwrap(), "--k", "2"]).unwrap();
        assert!(out.contains("k\t2"), "{out}");
        assert!(out.contains("silhouette"), "{out}");
        // trees 0,1 together and 2,3 together
        let rows: Vec<(usize, usize)> = out
            .lines()
            .skip_while(|l| !l.starts_with("tree"))
            .skip(1)
            .map(|l| {
                let mut parts = l.split('\t');
                (
                    parts.next().unwrap().parse().unwrap(),
                    parts.next().unwrap().parse().unwrap(),
                )
            })
            .collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].1, rows[1].1);
        assert_eq!(rows[2].1, rows[3].1);
        assert_ne!(rows[0].1, rows[2].1);
        // bad k is rejected
        assert!(runv(&["cluster", "--refs", refs.to_str().unwrap(), "--k", "9"]).is_err());
    }
}
