//! Round-trip property tests for the typed wire protocol: any envelope or
//! response the types can express must survive `to_json` → wire text →
//! `parse`/`from_json` unchanged, for both protocol versions.

use bfhrf_cli::json;
use bfhrf_cli::proto::{
    parse_request, CatalogRow, Envelope, ErrorCode, Op, Outcome, QueryFlags, Request, Response,
    ScoreRow, StatsBody, WireEncoding, PROTO_VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Newick-flavoured tree text: the protocol layer treats trees as opaque
/// strings, so the class just needs JSON-hostile characters (quotes are
/// escaped by the writer; backslashes exercise the escaper).
const TREE_PATTERN: &str = "[(),;:A-Ea-e0-9._\"\\\\ -]{0,40}";

/// Collection-name flavoured text (the protocol layer does not validate
/// names — the catalog does — so any string must round-trip).
const NAME_PATTERN: &str = "[A-Za-z0-9_.-]{1,12}";

fn request_from(
    which: usize,
    queries: Vec<String>,
    normalized: bool,
    halved: bool,
    collection: Option<String>,
) -> Request {
    let flags = QueryFlags { normalized, halved };
    let name = collection.clone().unwrap_or_else(|| "mammals".to_string());
    match which % 15 {
        0 => Request::Hello {
            // Reuse the flag bits so all three negotiation states appear.
            encoding: normalized.then_some(if halved {
                WireEncoding::Bin
            } else {
                WireEncoding::Newick
            }),
        },
        13 => Request::Taxa { collection },
        1 => Request::AvgRf {
            queries,
            flags,
            collection,
        },
        2 => Request::BestQuery {
            queries,
            collection,
        },
        3 => Request::Batch {
            queries,
            flags,
            collection,
        },
        4 => Request::Stats { collection },
        5 => Request::Add {
            trees: queries,
            collection,
        },
        6 => Request::Remove {
            trees: queries,
            collection,
        },
        7 => Request::Compact { collection },
        8 => Request::Ping { collection },
        9 => Request::Xavgrf {
            refs: name.clone(),
            queries: name,
            flags,
        },
        10 => Request::CatalogCreate {
            name,
            trees: queries,
        },
        11 => Request::CatalogDrop { name },
        12 => Request::CatalogList,
        _ => Request::Shutdown,
    }
}

proptest! {
    #[test]
    fn envelopes_round_trip_through_wire_text(
        which in 0usize..15,
        queries in vec(TREE_PATTERN, 0..6),
        normalized in any::<bool>(),
        halved in any::<bool>(),
        v2 in any::<bool>(),
        id in 0u64..(1 << 53),
        with_id in any::<bool>(),
        with_collection in any::<bool>(),
        collection_name in NAME_PATTERN,
    ) {
        let collection = with_collection.then_some(collection_name);
        let request = request_from(which, queries, normalized, halved, collection);
        let env = if v2 {
            Envelope::v2(request, with_id.then_some(id))
        } else {
            Envelope::v1(request)
        };
        let line = env.to_json().to_string();
        prop_assert!(!line.contains('\n'), "frames must be single lines: {line:?}");
        let back = parse_request(&line).unwrap();
        prop_assert_eq!(back, env);
        prop_assert_eq!(line.contains("\"v\""), v2, "only v2 frames carry a version: {}", line);
    }

    #[test]
    fn score_responses_round_trip(
        n_taxa in 0usize..2000,
        generation in 0u64..1_000_000,
        snap in 0u64..1_000_000,
        rows in vec((0u64..1_000_000, 0u64..1_000_000, 0usize..500), 0..8),
        notes in vec("[a-e ]{0,12}", 0..3),
        id in 0u64..(1 << 53),
        with_id in any::<bool>(),
    ) {
        let scores = rows
            .iter()
            .enumerate()
            .map(|(index, &(left, right, n_refs))| ScoreRow {
                index,
                left,
                right,
                n_refs,
                avg: if n_refs == 0 { 0.0 } else { (left + right) as f64 / n_refs as f64 },
            })
            .collect();
        let resp = Response::Scores { n_taxa, generation, snap, scores, notes };
        let id = with_id.then_some(id);
        let line = resp.to_json(id).to_string();
        let (back, back_id) = Response::from_json(&json::parse(&line).unwrap()).unwrap();
        prop_assert_eq!(back, resp);
        prop_assert_eq!(back_id, id);
    }

    #[test]
    fn admin_and_control_responses_round_trip(
        which in 0usize..11,
        a in 0u64..1_000_000,
        b in 0usize..1_000_000,
        c in 0usize..1_000_000,
        served in any::<u32>(),
    ) {
        let resp = match which {
            0 => Response::Hello {
                version: PROTO_VERSION,
                max_batch: b,
                encoding: match c % 3 {
                    0 => None,
                    1 => Some(WireEncoding::Newick),
                    _ => Some(WireEncoding::Bin),
                },
            },
            10 => Response::Taxa {
                generation: a,
                labels: (0..c % 5).map(|i| format!("t{i}")).collect(),
            },
            1 => Response::Applied { applied: b, n_trees: c },
            2 => Response::Compacted { generation: a, distinct: b, wal_pending: 0 },
            3 => Response::Shutdown,
            4 => Response::Pong {
                generation: a,
                wal_pending: b as u64,
                uptime_ms: a * 3,
                collections: (b % 2 == 0).then_some(a + 7),
                open_collections: (c % 3 == 0).then_some(b as u64 % 5),
            },
            5 => Response::XScores {
                common_taxa: c,
                scores: vec![ScoreRow {
                    index: 0,
                    left: a,
                    right: a + 1,
                    n_refs: b.max(1),
                    avg: (2 * a + 1) as f64 / b.max(1) as f64,
                }],
                notes: vec![],
            },
            6 => Response::Created { name: "mammals".into(), n_trees: b },
            7 => Response::Dropped { name: "mammals".into() },
            8 => Response::Catalog {
                collections: vec![CatalogRow {
                    name: "mammals".into(),
                    open: b % 2 == 0,
                    resident_bytes: c,
                }],
            },
            _ => Response::Stats {
                body: StatsBody {
                    generation: a,
                    n_trees: b,
                    n_taxa: c,
                    distinct: b / 2,
                    sum: a + 1,
                    wal_pending: c % 17,
                    served: u64::from(served),
                },
                metrics: json::Json::obj(vec![("series", json::Json::Arr(vec![]))]),
            },
        };
        let line = resp.to_json(None).to_string();
        let (back, back_id) = Response::from_json(&json::parse(&line).unwrap()).unwrap();
        prop_assert_eq!(back, resp);
        prop_assert_eq!(back_id, None);
    }

    #[test]
    fn error_responses_round_trip_and_keep_exit_semantics(
        outcome_pick in 0usize..4,
        message in "\\PC{0,60}",
        id in 0u64..(1 << 53),
        with_id in any::<bool>(),
    ) {
        let outcome =
            [Outcome::Error, Outcome::Budget, Outcome::Cancelled, Outcome::Busy][outcome_pick];
        let resp = Response::Error { code: outcome.code(), outcome, message };
        let id = with_id.then_some(id);
        let line = resp.to_json(id).to_string();
        let doc = json::parse(&line).unwrap();
        prop_assert_eq!(doc.get("ok").and_then(json::Json::as_bool), Some(false));
        let (back, back_id) = Response::from_json(&doc).unwrap();
        prop_assert_eq!(back_id, id);
        let Response::Error { code, outcome: back_outcome, .. } = &back else {
            panic!("error response parsed as {back:?}");
        };
        // budget + cancelled must stay on the `budget` wire code so v1
        // clients keep mapping them to exit 3
        prop_assert_eq!(*code, outcome.code());
        prop_assert_eq!(*back_outcome, outcome);
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn v1_dialect_is_a_subset_of_the_typed_surface(
        queries in vec(TREE_PATTERN, 1..4),
        halved in any::<bool>(),
    ) {
        // A frame written the way the v1 client writes it today must parse
        // into the same typed request as the typed writer's own output.
        let mut fields = vec![
            ("op", json::Json::from("avgrf")),
            ("queries", json::Json::Arr(queries.iter().map(|q| q.as_str().into()).collect())),
        ];
        if halved {
            fields.push(("halved", true.into()));
        }
        let handwritten = json::Json::obj(fields).to_string();
        let env = parse_request(&handwritten).unwrap();
        prop_assert_eq!(env.version, 1);
        prop_assert_eq!(env.request.op(), Op::AvgRf);
        prop_assert_eq!(parse_request(&env.to_json().to_string()).unwrap(), env);
    }
}

#[test]
fn every_wire_op_parses_back_to_itself() {
    for op in Op::ALL {
        if op == Op::Unknown {
            continue;
        }
        assert_eq!(Op::from_name(op.name()), Some(op), "{op:?}");
    }
    assert_eq!(
        ErrorCode::from_wire(ErrorCode::Budget.as_str()),
        ErrorCode::Budget
    );
    assert_eq!(
        ErrorCode::from_wire(ErrorCode::Error.as_str()),
        ErrorCode::Error
    );
    assert_eq!(
        ErrorCode::from_wire(ErrorCode::Busy.as_str()),
        ErrorCode::Busy
    );
}
