//! In-process integration tests for `bfhrf index` / `bfhrf serve` /
//! `bfhrf query`: a real TCP server on a loopback port, driven both
//! through raw sockets and through the `query` subcommand.

use bfhrf_cli::server::{ServeConfig, Server};
use bfhrf_cli::{json, run_full, EXIT_BUDGET, EXIT_OK};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

const REFS: &str = "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n";
const QUERIES: &str = "((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));\n";
const EXTRA: &str = "((A,B),((C,E),(D,F)));\n";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfhrf-serve-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p.to_str().unwrap().to_string()
}

fn runv(parts: &[&str]) -> Result<bfhrf_cli::CmdOutcome, bfhrf_cli::CliError> {
    run_full(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

/// Build an index directory from `refs` and return its path.
fn build_index(dir: &std::path::Path, refs: &str) -> String {
    let refs_path = write(dir, "refs.nwk", refs);
    let index_dir = dir.join("index");
    let out = runv(&[
        "index",
        "build",
        "--refs",
        &refs_path,
        "--out",
        index_dir.to_str().unwrap(),
    ])
    .unwrap();
    assert_eq!(out.code, EXIT_OK);
    assert!(out.stdout.contains("generation\t0"), "{}", out.stdout);
    index_dir.to_str().unwrap().to_string()
}

/// Start a server over `index_dir` on a free loopback port; returns the
/// address and the join handle for `run()`.
fn start_server(
    index_dir: &str,
    timeout_ms: Option<u64>,
) -> (String, std::thread::JoinHandle<u64>) {
    let srv = Server::bind(&ServeConfig {
        index_dir: PathBuf::from(index_dir),
        addr: "127.0.0.1:0".into(),
        threads: 3,
        mem_budget: None,
        timeout_ms,
        catalog_dir: None,
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    let handle = std::thread::spawn(move || srv.run().unwrap());
    (addr, handle)
}

/// Start a catalog-hosting server: default index from `index_dir`, named
/// collections out of `catalog_dir`, all under `mem_budget` bytes.
fn start_catalog_server(
    index_dir: &str,
    catalog_dir: &str,
    mem_budget: Option<usize>,
) -> (String, std::thread::JoinHandle<u64>) {
    let srv = Server::bind(&ServeConfig {
        index_dir: PathBuf::from(index_dir),
        addr: "127.0.0.1:0".into(),
        threads: 4,
        mem_budget,
        timeout_ms: None,
        catalog_dir: Some(PathBuf::from(catalog_dir)),
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    let handle = std::thread::spawn(move || srv.run().unwrap());
    (addr, handle)
}

fn raw_request(addr: &str, request: &str) -> json::Json {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(format!("{request}\n").as_bytes()).unwrap();
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).unwrap();
    json::parse(line.trim()).unwrap()
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<u64>) -> u64 {
    let resp = raw_request(addr, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
    handle.join().unwrap()
}

/// The acceptance round trip: a served `avgrf` answer must be
/// byte-identical to the offline `bfhrf avgrf` report on the same data.
#[test]
fn served_avgrf_matches_offline() {
    let dir = scratch("match");
    let refs_path = write(&dir, "refs.nwk", REFS);
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let offline = runv(&["avgrf", "--refs", &refs_path, "--queries", &queries_path]).unwrap();
    let served = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    assert_eq!(served.code, EXIT_OK);
    assert_eq!(served.stdout, offline.stdout);

    // The flag variants agree too.
    for flag in ["--normalized", "--halved"] {
        let offline = runv(&[
            "avgrf",
            "--refs",
            &refs_path,
            "--queries",
            &queries_path,
            flag,
        ])
        .unwrap();
        let served = runv(&["query", "--addr", &addr, "--queries", &queries_path, flag]).unwrap();
        assert_eq!(served.stdout, offline.stdout, "with {flag}");
    }

    // best-query matches the offline `best` subcommand.
    let offline = runv(&["best", "--refs", &refs_path, "--queries", &queries_path]).unwrap();
    let served = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "best-query",
        "--queries",
        &queries_path,
    ])
    .unwrap();
    assert_eq!(served.stdout, offline.stdout);

    let served_total = shutdown(&addr, handle);
    assert!(served_total >= 5, "served {served_total}");
}

/// Admin ops over the wire: add/remove/compact mutate the served hash and
/// persist across a server restart.
#[test]
fn admin_ops_mutate_and_persist() {
    let dir = scratch("admin");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let extra_path = write(&dir, "extra.nwk", EXTRA);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let before = raw_request(&addr, r#"{"op":"stats"}"#);
    assert_eq!(before.get("n_trees").unwrap().as_u64(), Some(3));
    assert_eq!(before.get("generation").unwrap().as_u64(), Some(0));

    // Add a tree over the wire; stats and answers change immediately.
    let add = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "add",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    assert!(add.stdout.contains("applied\t1"), "{}", add.stdout);
    assert!(add.stdout.contains("n_trees\t4"), "{}", add.stdout);
    let stats = raw_request(&addr, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("n_trees").unwrap().as_u64(), Some(4));
    assert_eq!(stats.get("wal_pending").unwrap().as_u64(), Some(1));

    // The served answer now reflects 4 reference trees.
    let served = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    let offline_refs = write(&dir, "refs4.nwk", &format!("{REFS}{EXTRA}"));
    let offline = runv(&["avgrf", "--refs", &offline_refs, "--queries", &queries_path]).unwrap();
    assert_eq!(served.stdout, offline.stdout);

    // Remove it again, then compact: generation bumps, WAL drains.
    let rm = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "remove",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    assert!(rm.stdout.contains("n_trees\t3"), "{}", rm.stdout);
    let compacted = runv(&["query", "--addr", &addr, "--op", "compact"]).unwrap();
    assert!(
        compacted.stdout.contains("generation\t1"),
        "{}",
        compacted.stdout
    );
    let stats = runv(&["query", "--addr", &addr, "--op", "stats"]).unwrap();
    assert!(stats.stdout.contains("wal_pending\t0"), "{}", stats.stdout);

    shutdown(&addr, handle);

    // Restart over the same directory: the compacted state survived.
    let (addr, handle) = start_server(&index_dir, None);
    let stats = raw_request(&addr, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("generation").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("n_trees").unwrap().as_u64(), Some(3));
    shutdown(&addr, handle);
}

/// Malformed requests are answered (not dropped), the connection stays
/// usable, and removing an unknown tree fails without mutating anything.
#[test]
fn protocol_errors_are_answered_and_recoverable() {
    let dir = scratch("errors");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ask = |req: &str| -> json::Json {
        stream.write_all(format!("{req}\n").as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        json::parse(line.trim()).unwrap()
    };

    for bad in [
        "this is not json",
        r#"{"no_op":1}"#,
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"avgrf"}"#,
        r#"{"op":"avgrf","queries":[42]}"#,
        r#"{"op":"avgrf","queries":["((A,Zed),B);"]}"#,
        r#"{"op":"remove","trees":["((A,B),((C,E),(D,F)));"]}"#,
    ] {
        let resp = ask(bad);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{bad}");
        assert!(resp.get("error").unwrap().as_str().is_some(), "{bad}");
    }
    // Same connection still answers good requests.
    let resp = ask(r#"{"op":"stats"}"#);
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(resp.get("n_trees").unwrap().as_u64(), Some(3));
    // Shut down while the connection is still open: the polling read loop
    // must notice the flag instead of blocking until the idle timeout.
    shutdown(&addr, handle);
    drop(reader);
    drop(stream);
}

/// Per-request budgets surface as the protocol's `budget` code, which the
/// query client maps to exit code 3 — and the server keeps serving. A
/// zero-millisecond deadline means every scoring request is already over
/// budget when its guard is armed.
#[test]
fn budget_refusal_is_exit_3_and_recoverable() {
    let dir = scratch("budget");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, Some(0));

    let err = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap_err();
    assert_eq!(err.code, EXIT_BUDGET, "{}", err.message);
    assert!(err.message.contains("server:"), "{}", err.message);

    // stats carries no per-request guard, so the daemon still answers.
    let stats = runv(&["query", "--addr", &addr, "--op", "stats"]).unwrap();
    assert!(stats.stdout.contains("n_trees\t3"), "{}", stats.stdout);
    shutdown(&addr, handle);
}

/// Concurrent clients hammering avgrf all get byte-identical answers.
/// With 8 clients against 3 connection slots some connections get shed
/// with a typed `busy` frame; `--retries` absorbs the sheds, so every
/// client still converges on the same bytes.
#[test]
fn concurrent_queries_agree() {
    let dir = scratch("concurrent");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let want = runv(&["query", "--addr", &addr, "--queries", &queries_path])
        .unwrap()
        .stdout;
    let answers: Vec<String> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let addr = addr.clone();
                let queries_path = queries_path.clone();
                scope.spawn(move || {
                    (0..5)
                        .map(|_| {
                            runv(&[
                                "query",
                                "--addr",
                                &addr,
                                "--queries",
                                &queries_path,
                                "--retries",
                                "20",
                                "--backoff-ms",
                                "10",
                            ])
                            .unwrap()
                            .stdout
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(answers.len(), 40);
    for a in &answers {
        assert_eq!(a, &want);
    }
    let served = shutdown(&addr, handle);
    assert!(served >= 41, "served {served}");
}

/// `serve --port-file` + `query --port-file` close the loop without the
/// caller ever knowing the port; `index inspect` reads the same state.
#[test]
fn port_file_and_inspect() {
    let dir = scratch("portfile");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);

    let inspect = runv(&["index", "inspect", "--index", &index_dir, "--check"]).unwrap();
    assert!(inspect.stdout.contains("n_trees\t3"), "{}", inspect.stdout);
    assert!(inspect.stdout.contains("check\tok"), "{}", inspect.stdout);

    // Drive serve through the real subcommand in a thread; sync on the
    // port file like the CI smoke script does.
    let port_file = dir.join("port");
    let serve_args: Vec<String> = [
        "serve",
        "--index",
        &index_dir,
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "2",
        "--port-file",
        port_file.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let handle = std::thread::spawn(move || run_full(&serve_args).unwrap());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !port_file.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "port file never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let out = runv(&[
        "query",
        "--port-file",
        port_file.to_str().unwrap(),
        "--queries",
        &queries_path,
    ])
    .unwrap();
    assert!(out.stdout.starts_with("query\tavg_rf\n"), "{}", out.stdout);

    let bye = runv(&[
        "query",
        "--port-file",
        port_file.to_str().unwrap(),
        "--op",
        "shutdown",
    ])
    .unwrap();
    assert_eq!(bye.stdout, "shutdown\tok\n");
    let outcome = handle.join().unwrap();
    assert!(outcome.stdout.starts_with("served\t"), "{}", outcome.stdout);
}

/// Find one exposition series by name and exact label set.
fn find_series<'a>(
    metrics: &'a json::Json,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a json::Json> {
    metrics.get("series")?.as_arr()?.iter().find(|s| {
        let n_labels = match s.get("labels") {
            Some(json::Json::Obj(pairs)) => pairs.len(),
            _ => return false,
        };
        s.get("name").and_then(|n| n.as_str()) == Some(name)
            && n_labels == labels.len()
            && labels.iter().all(|(k, v)| {
                s.get("labels")
                    .and_then(|l| l.get(k))
                    .and_then(|x| x.as_str())
                    == Some(*v)
            })
    })
}

/// The `stats` response carries a `metrics` payload of exposition JSON
/// that round-trips through the shared json module, holds the full
/// pre-registered series set (every op x outcome cell exists before any
/// request of that kind arrives), and keeps counting across a
/// snapshot-generation swap mid-stream.
///
/// The registry is process-global and tests share one binary, so every
/// numeric assertion is `>=` or a delta — parallel tests may also count.
#[test]
fn stats_metrics_schema_and_snapshot_swap() {
    let dir = scratch("metrics");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let extra_path = write(&dir, "extra.nwk", EXTRA);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    for _ in 0..3 {
        runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    }
    let resp = raw_request(&addr, r#"{"op":"stats"}"#);
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
    let metrics = resp.get("metrics").expect("stats carries metrics");

    // Round trip: exposition output is exactly what the parser reads back.
    assert_eq!(json::parse(&metrics.to_string()).unwrap(), *metrics);

    // Schema stability: every op x outcome cell pre-registered at bind.
    for op in [
        "hello",
        "avgrf",
        "best-query",
        "batch",
        "ping",
        "stats",
        "add",
        "remove",
        "compact",
        "xavgrf",
        "catalog-create",
        "catalog-drop",
        "catalog-list",
        "shutdown",
        "unknown",
    ] {
        for outcome in ["ok", "error", "budget", "cancelled", "busy"] {
            let s = find_series(
                metrics,
                "serve_requests_total",
                &[("op", op), ("outcome", outcome)],
            )
            .unwrap_or_else(|| panic!("missing series op={op} outcome={outcome}"));
            assert_eq!(s.get("kind").unwrap().as_str(), Some("counter"));
        }
    }

    // The burst above was counted and timed.
    let ok = find_series(
        metrics,
        "serve_requests_total",
        &[("op", "avgrf"), ("outcome", "ok")],
    )
    .unwrap();
    let ok_before = ok.get("value").unwrap().as_u64().unwrap();
    assert!(ok_before >= 3, "avgrf ok = {ok_before}");
    let lat = find_series(metrics, "serve_request_ns", &[("op", "avgrf")]).unwrap();
    assert_eq!(lat.get("kind").unwrap().as_str(), Some("histogram"));
    assert!(lat.get("count").unwrap().as_u64().unwrap() >= 3);
    for key in ["sum", "max", "mean", "p50", "p90", "p99"] {
        assert!(
            lat.get(key).unwrap().as_f64().unwrap() > 0.0,
            "{key} not positive"
        );
    }
    assert!(!lat.get("buckets").unwrap().as_arr().unwrap().is_empty());
    let swaps_before = find_series(metrics, "serve_snapshot_swaps_total", &[])
        .unwrap()
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();

    // Swap the snapshot generation mid-stream (add publishes a new Arc),
    // keep querying, and the same counters keep counting.
    runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "add",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    let resp = raw_request(&addr, r#"{"op":"stats"}"#);
    let metrics = resp.get("metrics").unwrap();
    assert_eq!(json::parse(&metrics.to_string()).unwrap(), *metrics);
    let swaps_after = find_series(metrics, "serve_snapshot_swaps_total", &[])
        .unwrap()
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        swaps_after > swaps_before,
        "{swaps_before} -> {swaps_after}"
    );
    let ok_after = find_series(
        metrics,
        "serve_requests_total",
        &[("op", "avgrf"), ("outcome", "ok")],
    )
    .unwrap()
    .get("value")
    .unwrap()
    .as_u64()
    .unwrap();
    assert!(ok_after > ok_before, "{ok_before} -> {ok_after}");
    let adds = find_series(metrics, "wal_appends_total", &[("op", "add")])
        .unwrap()
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(adds >= 1);

    // The human renderer exposes the same numbers without --json.
    let human = runv(&["stats", "--addr", &addr]).unwrap();
    assert!(
        human
            .stdout
            .contains("serve_requests_total{op=avgrf,outcome=ok}"),
        "{}",
        human.stdout
    );
    assert!(human.stdout.contains("serve_request_ns{op=avgrf}"));
    shutdown(&addr, handle);
}

/// A budget-refused request is visible in the metrics under its own
/// outcome label, and the client surfaces the server's outcome code.
#[test]
fn budget_outcome_is_counted_and_surfaced() {
    let dir = scratch("metrics-budget");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, Some(0));

    let err = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap_err();
    assert_eq!(err.code, EXIT_BUDGET);
    assert!(err.message.contains("server: ["), "{}", err.message);

    let resp = raw_request(&addr, r#"{"op":"stats"}"#);
    let metrics = resp.get("metrics").unwrap();
    let refused: u64 = ["budget", "cancelled"]
        .iter()
        .map(|outcome| {
            find_series(
                metrics,
                "serve_requests_total",
                &[("op", "avgrf"), ("outcome", outcome)],
            )
            .unwrap()
            .get("value")
            .unwrap()
            .as_u64()
            .unwrap()
        })
        .sum();
    assert!(refused >= 1, "no refused avgrf counted");
    shutdown(&addr, handle);
}

/// Shutdown must wake a worker blocked in `read` on an idle connection at
/// once. The socket read timeout is the 300 s idle window — without the
/// connection-registry interrupt the join below would hang for minutes,
/// not finish in moments.
#[test]
fn shutdown_interrupts_idle_connections_immediately() {
    let dir = scratch("serve-idle-shutdown");
    let index_dir = build_index(&dir, "((A,B),(C,D));\n((A,C),(B,D));\n");
    let (addr, handle) = start_server(&index_dir, None);

    // Park a connection that never sends a byte: a worker blocks reading it.
    let idle = TcpStream::connect(&addr).unwrap();
    // Let the worker reach the blocking read before shutdown fires.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let begin = std::time::Instant::now();
    shutdown(&addr, handle);
    assert!(
        begin.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?} with an idle connection parked",
        begin.elapsed()
    );
    drop(idle);
}

// ---------------------------------------------------------------------------
// Wire protocol v2: hello, batch, pipelining
// ---------------------------------------------------------------------------

/// A persistent raw connection with split read/write halves, for tests
/// that pipeline frames or deliver partial ones.
struct RawConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn open(addr: &str) -> RawConn {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        RawConn { stream, reader }
    }

    fn send(&mut self, frame: &str) {
        self.stream
            .write_all(format!("{frame}\n").as_bytes())
            .unwrap();
    }

    fn recv(&mut self) -> json::Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        json::parse(line.trim()).unwrap()
    }
}

/// The v2 handshake answers the protocol version and batch ceiling, and
/// the same connection keeps serving v1 frames afterwards (dialects mix
/// freely on one connection).
#[test]
fn hello_handshake_reports_version_and_ceiling() {
    let dir = scratch("hello");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut conn = RawConn::open(&addr);
    conn.send(r#"{"v":2,"op":"hello"}"#);
    let resp = conn.recv();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(resp.get("v").unwrap().as_u64(), Some(2));
    assert_eq!(
        resp.get("max_batch").unwrap().as_u64(),
        Some(bfhrf_cli::proto::MAX_BATCH as u64)
    );
    // A v1 frame on the same connection still answers.
    conn.send(r#"{"op":"stats"}"#);
    assert_eq!(conn.recv().get("ok").unwrap().as_bool(), Some(true));
    // Frames claiming a future protocol version fail loudly, typed.
    conn.send(r#"{"v":9,"op":"stats"}"#);
    let resp = conn.recv();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
    assert!(
        resp.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unsupported protocol version"),
        "{resp}"
    );
    shutdown(&addr, handle);
}

/// Pipelined frames — including one delivered in two partial writes — are
/// answered strictly in request order with their ids echoed.
#[test]
fn pipelined_partial_frames_answer_in_order() {
    let dir = scratch("pipeline");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut conn = RawConn::open(&addr);
    let frame = |id: u64| {
        format!(r#"{{"v":2,"op":"batch","id":{id},"queries":["((A,B),((C,D),(E,F)));"]}}"#)
    };
    // Burst of three frames in one write...
    let burst = format!("{}\n{}\n{}\n", frame(10), frame(11), frame(12));
    conn.stream.write_all(burst.as_bytes()).unwrap();
    // ...then a fourth delivered in two halves with a pause in between:
    // the reassembly path must treat it exactly like a whole frame.
    let late = format!("{}\n", frame(13));
    let (a, b) = late.as_bytes().split_at(late.len() / 2);
    conn.stream.write_all(a).unwrap();
    conn.stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    conn.stream.write_all(b).unwrap();

    for expect in [10u64, 11, 12, 13] {
        let resp = conn.recv();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert_eq!(resp.get("id").unwrap().as_u64(), Some(expect), "{resp}");
        assert_eq!(resp.get("scores").unwrap().as_arr().unwrap().len(), 1);
    }
    shutdown(&addr, handle);
}

/// Admin and query ops interleaved on one pipelined connection answer in
/// order, and each batch reports the snapshot that answered it: the batch
/// before the `add` sees the old hash, the one after sees the new one.
#[test]
fn interleaved_admin_and_query_frames_pin_their_snapshots() {
    let dir = scratch("interleave");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut conn = RawConn::open(&addr);
    let batch = |id: u64| {
        format!(r#"{{"v":2,"op":"batch","id":{id},"queries":["((A,B),((C,D),(E,F)));"]}}"#)
    };
    let add = format!(r#"{{"op":"add","trees":["{}"]}}"#, EXTRA.trim());
    let burst = format!(
        "{}\n{add}\n{}\n{}\n",
        batch(1),
        batch(2),
        r#"{"op":"stats"}"#
    );
    conn.stream.write_all(burst.as_bytes()).unwrap();

    let before = conn.recv();
    assert_eq!(before.get("id").unwrap().as_u64(), Some(1));
    let applied = conn.recv();
    assert_eq!(applied.get("applied").unwrap().as_u64(), Some(1));
    let after = conn.recv();
    assert_eq!(after.get("id").unwrap().as_u64(), Some(2));
    let stats = conn.recv();
    assert_eq!(stats.get("n_trees").unwrap().as_u64(), Some(4));

    let n_refs = |resp: &json::Json| {
        resp.get("scores").unwrap().as_arr().unwrap()[0]
            .get("n_refs")
            .unwrap()
            .as_u64()
            .unwrap()
    };
    assert_eq!(n_refs(&before), 3, "{before}");
    assert_eq!(n_refs(&after), 4, "{after}");
    let snap = |resp: &json::Json| resp.get("snap").unwrap().as_u64().unwrap();
    assert!(
        snap(&after) > snap(&before),
        "snap did not advance: {} -> {}",
        snap(&before),
        snap(&after)
    );
    shutdown(&addr, handle);
}

/// A batch above the server's ceiling is refused with a typed error and
/// the connection keeps serving.
#[test]
fn oversized_batch_is_rejected_and_connection_survives() {
    let dir = scratch("oversize");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let tree = "\"((A,B),((C,D),(E,F)));\"";
    let queries = vec![tree; bfhrf_cli::proto::MAX_BATCH + 1].join(",");
    let mut conn = RawConn::open(&addr);
    conn.send(&format!(r#"{{"v":2,"op":"batch","queries":[{queries}]}}"#));
    let resp = conn.recv();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(resp.get("code").unwrap().as_str(), Some("error"));
    assert!(
        resp.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("max_batch"),
        "{resp}"
    );
    // Same connection, conforming batch: answers fine.
    conn.send(r#"{"v":2,"op":"batch","queries":["((A,B),((C,D),(E,F)));"]}"#);
    assert_eq!(conn.recv().get("ok").unwrap().as_bool(), Some(true));
    shutdown(&addr, handle);
}

/// Batches racing concurrent admin mutations: every row of a batch must
/// come from one snapshot (uniform `n_refs`), and the `snap` ids a
/// connection observes never go backwards.
#[test]
fn mid_batch_snapshot_swaps_keep_batches_single_generation() {
    let dir = scratch("swap-race");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mutator = {
        let addr = addr.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let add = format!(r#"{{"op":"add","trees":["{}"]}}"#, EXTRA.trim());
            let remove = format!(r#"{{"op":"remove","trees":["{}"]}}"#, EXTRA.trim());
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                assert_eq!(
                    raw_request(&addr, &add).get("ok").unwrap().as_bool(),
                    Some(true)
                );
                assert_eq!(
                    raw_request(&addr, &remove).get("ok").unwrap().as_bool(),
                    Some(true)
                );
            }
        })
    };

    let mut conn = RawConn::open(&addr);
    // Two queries per batch so a torn snapshot would show as mixed n_refs
    // within one frame.
    let frame = |id: u64| {
        format!(
            r#"{{"v":2,"op":"batch","id":{id},"queries":["((A,B),((C,D),(E,F)));","((A,E),((C,D),(B,F)));"]}}"#
        )
    };
    let mut last_snap = 0u64;
    for round in 0..30u64 {
        conn.send(&frame(round));
        let resp = conn.recv();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        let rows = resp.get("scores").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        let refs: Vec<u64> = rows
            .iter()
            .map(|r| r.get("n_refs").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(refs[0], refs[1], "torn batch in round {round}: {resp}");
        assert!(refs[0] == 3 || refs[0] == 4, "{resp}");
        let snap = resp.get("snap").unwrap().as_u64().unwrap();
        assert!(
            snap >= last_snap,
            "snap went backwards: {last_snap} -> {snap}"
        );
        last_snap = snap;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    mutator.join().unwrap();
    shutdown(&addr, handle);
}

/// `bfhrf query --batch N` output is byte-identical to the offline
/// `avgrf` table regardless of frame size, and flags ride along.
#[test]
fn client_batch_mode_matches_offline_avgrf() {
    let dir = scratch("client-batch");
    let refs_path = write(&dir, "refs.nwk", REFS);
    // Enough queries to span several frames at --batch 2.
    let many: String = QUERIES.repeat(4);
    let queries_path = write(&dir, "queries.nwk", &many);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let offline = runv(&["avgrf", "--refs", &refs_path, "--queries", &queries_path]).unwrap();
    for batch in ["1", "2", "64"] {
        let served = runv(&[
            "query",
            "--addr",
            &addr,
            "--queries",
            &queries_path,
            "--batch",
            batch,
        ])
        .unwrap();
        assert_eq!(served.code, EXIT_OK, "--batch {batch}");
        assert_eq!(served.stdout, offline.stdout, "--batch {batch}");
    }
    // Flags flow through batch frames too.
    let offline = runv(&[
        "avgrf",
        "--refs",
        &refs_path,
        "--queries",
        &queries_path,
        "--normalized",
    ])
    .unwrap();
    let served = runv(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        &queries_path,
        "--batch",
        "3",
        "--normalized",
    ])
    .unwrap();
    assert_eq!(served.stdout, offline.stdout);
    // --batch outside avgrf is a client-side error.
    let err = runv(&["query", "--addr", &addr, "--op", "stats", "--batch", "2"]).unwrap_err();
    assert!(err.message.contains("--batch"), "{}", err.message);
    shutdown(&addr, handle);
}

// ---------------------------------------------------------------------------
// Failure handling: ping, busy shedding, graceful drain, retries
// ---------------------------------------------------------------------------

/// The v2 `ping` op answers a health summary — generation, WAL depth,
/// uptime — through both the raw wire and the `query` client, and the
/// mirrored WAL depth tracks mutations and compactions.
#[test]
fn ping_reports_generation_wal_depth_and_uptime() {
    let dir = scratch("ping");
    let extra_path = write(&dir, "extra.nwk", EXTRA);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let pong = raw_request(&addr, r#"{"v":2,"op":"ping"}"#);
    assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true), "{pong}");
    assert_eq!(pong.get("pong").unwrap().as_bool(), Some(true), "{pong}");
    assert_eq!(pong.get("generation").unwrap().as_u64(), Some(0));
    assert_eq!(pong.get("wal_pending").unwrap().as_u64(), Some(0));
    assert!(pong.get("uptime_ms").unwrap().as_u64().is_some(), "{pong}");

    // A mutation shows up in the mirrored WAL depth without the ping
    // touching the admin lock.
    runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "add",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    let pong = raw_request(&addr, r#"{"v":2,"op":"ping"}"#);
    assert_eq!(pong.get("wal_pending").unwrap().as_u64(), Some(1), "{pong}");

    // Compaction drains it and bumps the generation.
    runv(&["query", "--addr", &addr, "--op", "compact"]).unwrap();
    let pong = raw_request(&addr, r#"{"v":2,"op":"ping"}"#);
    assert_eq!(pong.get("generation").unwrap().as_u64(), Some(1), "{pong}");
    assert_eq!(pong.get("wal_pending").unwrap().as_u64(), Some(0), "{pong}");

    // The query client renders the same numbers as a table.
    let out = runv(&["query", "--addr", &addr, "--op", "ping"]).unwrap();
    assert!(out.stdout.contains("generation\t1"), "{}", out.stdout);
    assert!(out.stdout.contains("wal_pending\t0"), "{}", out.stdout);
    assert!(out.stdout.contains("uptime_ms\t"), "{}", out.stdout);
    shutdown(&addr, handle);
}

/// At the connection ceiling the daemon sheds new connections with a
/// typed `busy` frame instead of queueing them: a plain client surfaces
/// it as exit 1, a retrying client rides it out once a slot frees up.
#[test]
fn busy_shed_is_typed_and_absorbed_by_retries() {
    let dir = scratch("busy");
    let index_dir = build_index(&dir, REFS);
    let srv = Server::bind(&ServeConfig {
        index_dir: PathBuf::from(&index_dir),
        addr: "127.0.0.1:0".into(),
        threads: 1,
        mem_budget: None,
        timeout_ms: None,
        catalog_dir: None,
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    let handle = std::thread::spawn(move || srv.run().unwrap());

    // Occupy the single slot with a connection that never speaks.
    let hog = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));

    // Raw connection: one typed busy frame, then close.
    let mut shed = BufReader::new(TcpStream::connect(&addr).unwrap());
    let mut line = String::new();
    shed.read_line(&mut line).unwrap();
    let resp = json::parse(line.trim()).unwrap();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{resp}");
    assert_eq!(resp.get("code").unwrap().as_str(), Some("busy"), "{resp}");
    assert_eq!(
        resp.get("outcome").unwrap().as_str(),
        Some("busy"),
        "{resp}"
    );
    line.clear();
    assert_eq!(
        shed.read_line(&mut line).unwrap(),
        0,
        "shed conn not closed"
    );

    // A client without retries maps busy to exit 1.
    let err = runv(&["query", "--addr", &addr, "--op", "ping"]).unwrap_err();
    assert_eq!(err.code, 1, "{}", err.message);
    assert!(err.message.contains("busy"), "{}", err.message);

    // Free the slot shortly; a retrying client succeeds through the sheds.
    let freer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(300));
        drop(hog);
    });
    let out = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "ping",
        "--retries",
        "10",
        "--backoff-ms",
        "50",
    ])
    .unwrap();
    assert!(out.stdout.contains("generation\t0"), "{}", out.stdout);
    freer.join().unwrap();

    // The single slot may still be draining the previous client's
    // connection, so raw requests here can themselves get shed; retry
    // past any busy frame.
    let retry_ok = |req: &str| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let resp = raw_request(&addr, req);
            if resp.get("ok").unwrap().as_bool() == Some(true) {
                return resp;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "request kept getting shed: {resp}"
            );
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    };

    // The sheds were counted.
    let stats = retry_ok(r#"{"op":"stats"}"#);
    let metrics = stats.get("metrics").unwrap();
    let sheds = find_series(metrics, "serve_busy_rejections_total", &[])
        .unwrap()
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(sheds >= 2, "busy sheds = {sheds}");
    retry_ok(r#"{"op":"shutdown"}"#);
    handle.join().unwrap();
}

/// Shutdown drains gracefully: a pipelined connection with frames already
/// buffered server-side gets an answer for every one of them before the
/// close, even though another connection triggered the shutdown.
#[test]
fn shutdown_drains_buffered_pipelined_frames() {
    let dir = scratch("drain");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut conn = RawConn::open(&addr);
    let frame = |id: u64| {
        format!(r#"{{"v":2,"op":"batch","id":{id},"queries":["((A,B),((C,D),(E,F)));"]}}"#)
    };
    let burst: String = (0..6).map(|i| format!("{}\n", frame(i))).collect();
    conn.stream.write_all(burst.as_bytes()).unwrap();
    conn.stream.flush().unwrap();
    // Let the burst land in the handler's read buffer before shutdown.
    std::thread::sleep(std::time::Duration::from_millis(150));

    let served = shutdown(&addr, handle);
    // Every buffered frame was answered, in order, before the half-close.
    for expect in 0..6u64 {
        let resp = conn.recv();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert_eq!(resp.get("id").unwrap().as_u64(), Some(expect), "{resp}");
    }
    // Then a clean EOF.
    let mut line = String::new();
    assert_eq!(conn.reader.read_line(&mut line).unwrap(), 0);
    assert!(served >= 7, "served {served}");
}

/// A daemon restart in the middle of a pipelined batch session: the
/// retrying client reconnects, re-handshakes, resends every unanswered
/// frame, and the final table is byte-identical to an offline run. This
/// is the in-process version of the chaos smoke's kill-and-restart.
#[test]
fn mid_batch_restart_with_retries_is_byte_identical() {
    let dir = scratch("restart");
    let refs_path = write(&dir, "refs.nwk", REFS);
    // Enough single-query frames that the restart lands mid-session.
    let many: String = QUERIES.repeat(40);
    let queries_path = write(&dir, "queries.nwk", &many);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let offline = runv(&["avgrf", "--refs", &refs_path, "--queries", &queries_path]).unwrap();

    let client = {
        let addr = addr.clone();
        let queries_path = queries_path.clone();
        std::thread::spawn(move || {
            runv(&[
                "query",
                "--addr",
                &addr,
                "--queries",
                &queries_path,
                "--batch",
                "1",
                "--retries",
                "15",
                "--backoff-ms",
                "50",
            ])
        })
    };

    // Stop the daemon mid-session, then rebind on the SAME port — the
    // dead listener's port may linger, so retry the bind briefly.
    std::thread::sleep(std::time::Duration::from_millis(40));
    shutdown(&addr, handle);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let srv = loop {
        match Server::bind(&ServeConfig {
            index_dir: PathBuf::from(&index_dir),
            addr: addr.clone(),
            threads: 3,
            mem_budget: None,
            timeout_ms: None,
            catalog_dir: None,
        }) {
            Ok(srv) => break srv,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "could not rebind {addr}: {}",
                    e.message
                );
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    };
    let handle = std::thread::spawn(move || srv.run().unwrap());

    let out = client.join().unwrap().expect("retrying client failed");
    assert_eq!(out.code, EXIT_OK);
    assert_eq!(out.stdout, offline.stdout, "restart changed the answer");
    shutdown(&addr, handle);
}

// ---------------------------------------------------------------------------
// Multi-collection catalog
// ---------------------------------------------------------------------------

/// Three distinct reference sets on the same six taxa, one per collection.
const C1: &str = "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n";
const C2: &str = "((A,C),((B,D),(E,F)));\n((A,B),((C,E),(D,F)));\n((A,D),((B,C),(E,F)));\n";
const C3: &str = "((A,E),((B,F),(C,D)));\n((A,F),((B,E),(C,D)));\n((A,B),((C,F),(D,E)));\n";

/// Parse a `catalog-list` rendered table into (name, open, resident) rows.
fn parse_catalog_table(stdout: &str) -> Vec<(String, bool, usize)> {
    stdout
        .lines()
        .skip(1) // header
        .map(|l| {
            let mut parts = l.split('\t');
            (
                parts.next().unwrap().to_string(),
                parts.next().unwrap() == "true",
                parts.next().unwrap().parse().unwrap(),
            )
        })
        .collect()
}

/// The tentpole acceptance path: one daemon hosts the default index plus
/// three catalog collections under a byte budget smaller than their
/// combined frozen size, answers an interleaved workload correctly, and
/// the evictions are observable.
#[test]
fn catalog_daemon_hosts_many_collections_under_budget() {
    let dir = scratch("catalog-accept");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let c1_path = write(&dir, "c1.nwk", C1);
    let c2_path = write(&dir, "c2.nwk", C2);
    let c3_path = write(&dir, "c3.nwk", C3);
    let index_dir = build_index(&dir, REFS);
    let catalog_dir = dir.join("catalog");
    let catalog_dir = catalog_dir.to_str().unwrap();

    // Phase 1: no budget. Create the collections and measure their frozen
    // footprints through catalog-list.
    let (addr, handle) = start_catalog_server(&index_dir, catalog_dir, None);
    for (name, path) in [("m1", &c1_path), ("m2", &c2_path), ("m3", &c3_path)] {
        let out = runv(&[
            "catalog", "create", "--addr", &addr, "--name", name, "--trees", path,
        ])
        .unwrap();
        assert!(
            out.stdout.contains(&format!("created\t{name}")),
            "{}",
            out.stdout
        );
        assert!(out.stdout.contains("n_trees\t3"), "{}", out.stdout);
    }
    // Open all three by touching them once.
    for name in ["m1", "m2", "m3"] {
        runv(&[
            "query",
            "--addr",
            &addr,
            "--collection",
            name,
            "--queries",
            &queries_path,
        ])
        .unwrap();
    }
    let list = runv(&["catalog", "list", "--addr", &addr]).unwrap();
    let rows = parse_catalog_table(&list.stdout);
    assert_eq!(rows.len(), 3, "{}", list.stdout);
    assert!(rows.iter().all(|(_, open, _)| *open), "{}", list.stdout);
    let sizes: Vec<usize> = rows.iter().map(|&(_, _, b)| b).collect();
    assert!(sizes.iter().all(|&b| b > 0), "{}", list.stdout);
    let combined: usize = sizes.iter().sum();

    // The v2 pong counts the default index plus the three collections.
    let pong = raw_request(&addr, r#"{"v":2,"op":"ping"}"#);
    assert_eq!(pong.get("collections").unwrap().as_u64(), Some(4), "{pong}");
    assert_eq!(
        pong.get("open_collections").unwrap().as_u64(),
        Some(4),
        "{pong}"
    );
    shutdown(&addr, handle);

    // Phase 2: restart over the same catalog with a budget one byte short
    // of the combined footprint — the third open must evict the LRU.
    let (addr, handle) = start_catalog_server(&index_dir, catalog_dir, Some(combined - 1));
    let list = runv(&["catalog", "list", "--addr", &addr]).unwrap();
    let rows = parse_catalog_table(&list.stdout);
    assert_eq!(rows.len(), 3, "collections survive the restart");
    assert!(
        rows.iter().all(|(_, open, _)| !*open),
        "all start lazy-closed: {}",
        list.stdout
    );

    // Interleaved workload: every routed answer must match the offline run
    // on the collection's own references, before and after evictions.
    let expected: Vec<String> = [&c1_path, &c2_path, &c3_path]
        .iter()
        .map(|refs| {
            runv(&["avgrf", "--refs", refs, "--queries", &queries_path])
                .unwrap()
                .stdout
        })
        .collect();
    let routed = |name: &str| {
        runv(&[
            "query",
            "--addr",
            &addr,
            "--collection",
            name,
            "--queries",
            &queries_path,
        ])
        .unwrap()
        .stdout
    };
    assert_eq!(routed("m1"), expected[0]);
    assert_eq!(routed("m2"), expected[1]);
    // Opening m3 pushes the pool past the budget: m1 (LRU) is evicted.
    assert_eq!(routed("m3"), expected[2]);
    let rows = parse_catalog_table(&runv(&["catalog", "list", "--addr", &addr]).unwrap().stdout);
    let open_of = |rows: &[(String, bool, usize)], name: &str| {
        rows.iter().find(|(n, _, _)| n == name).unwrap().1
    };
    assert!(!open_of(&rows, "m1"), "m1 should be evicted: {rows:?}");
    assert!(open_of(&rows, "m2"), "{rows:?}");
    assert!(open_of(&rows, "m3"), "{rows:?}");

    // Touching the evicted collection reopens it (evicting m2) and the
    // answer is still byte-identical to the offline run.
    assert_eq!(routed("m1"), expected[0]);
    let rows = parse_catalog_table(&runv(&["catalog", "list", "--addr", &addr]).unwrap().stdout);
    assert!(open_of(&rows, "m1"), "{rows:?}");
    assert!(!open_of(&rows, "m2"), "m2 should be evicted: {rows:?}");

    // The evictions are visible in the metrics, per collection.
    let resp = raw_request(&addr, r#"{"op":"stats"}"#);
    let metrics = resp.get("metrics").unwrap();
    for victim in ["m1", "m2"] {
        let evictions = find_series(
            metrics,
            "catalog_evictions_total",
            &[("collection", victim)],
        )
        .unwrap_or_else(|| panic!("missing catalog_evictions_total for {victim}"))
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
        assert!(evictions >= 1, "{victim} evictions = {evictions}");
    }

    // The default index answers unrouted queries throughout.
    let refs_path = write(&dir, "refs-again.nwk", REFS);
    let offline = runv(&["avgrf", "--refs", &refs_path, "--queries", &queries_path]).unwrap();
    let unrouted = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    assert_eq!(unrouted.stdout, offline.stdout);
    shutdown(&addr, handle);
}

/// Collection-less clients see the same bytes whether or not the daemon
/// hosts a catalog, and v1 pongs never grow the new members.
#[test]
fn collectionless_clients_are_unchanged_by_the_catalog() {
    let dir = scratch("catalog-legacy");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let catalog_dir = dir.join("catalog");

    let (plain_addr, plain_handle) = start_server(&index_dir, None);
    let (cat_addr, cat_handle) =
        start_catalog_server(&index_dir, catalog_dir.to_str().unwrap(), None);

    for args in [
        vec!["--queries", queries_path.as_str()],
        vec!["--op", "best-query", "--queries", queries_path.as_str()],
        vec!["--op", "stats"],
    ] {
        let mut plain = vec!["query", "--addr", &plain_addr];
        plain.extend(&args);
        let mut cat = vec!["query", "--addr", &cat_addr];
        cat.extend(&args);
        assert_eq!(
            runv(&plain).unwrap().stdout,
            runv(&cat).unwrap().stdout,
            "{args:?}"
        );
    }

    // v1 pings carry no catalog members from either daemon.
    for addr in [&plain_addr, &cat_addr] {
        let pong = raw_request(addr, r#"{"op":"ping"}"#);
        assert!(pong.get("collections").is_none(), "{pong}");
        assert!(pong.get("open_collections").is_none(), "{pong}");
    }
    // v2 pings always carry them; without a catalog both count only the
    // default index.
    let pong = raw_request(&plain_addr, r#"{"v":2,"op":"ping"}"#);
    assert_eq!(pong.get("collections").unwrap().as_u64(), Some(1), "{pong}");
    assert_eq!(
        pong.get("open_collections").unwrap().as_u64(),
        Some(1),
        "{pong}"
    );

    shutdown(&plain_addr, plain_handle);
    shutdown(&cat_addr, cat_handle);
}

/// Routed mutations land in the named collection's own WAL and leave the
/// default index untouched; the mutation survives eviction because the
/// collection reopens from its own durable state.
#[test]
fn routed_mutations_are_isolated_and_survive_eviction() {
    let dir = scratch("catalog-mutate");
    let extra_path = write(&dir, "extra.nwk", EXTRA);
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let catalog_dir = dir.join("catalog");
    let catalog_dir = catalog_dir.to_str().unwrap();

    let (addr, handle) = start_catalog_server(&index_dir, catalog_dir, None);
    let c1_path = write(&dir, "c1.nwk", C1);
    runv(&[
        "catalog", "create", "--addr", &addr, "--name", "mut1", "--trees", &c1_path,
    ])
    .unwrap();

    // Routed add: the collection's stats move, the default's do not.
    let out = runv(&[
        "query",
        "--addr",
        &addr,
        "--collection",
        "mut1",
        "--op",
        "add",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    assert!(out.stdout.contains("applied\t1"), "{}", out.stdout);
    assert!(out.stdout.contains("n_trees\t4"), "{}", out.stdout);
    let col_stats = runv(&[
        "query",
        "--addr",
        &addr,
        "--collection",
        "mut1",
        "--op",
        "stats",
    ])
    .unwrap();
    assert!(
        col_stats.stdout.contains("n_trees\t4"),
        "{}",
        col_stats.stdout
    );
    assert!(
        col_stats.stdout.contains("wal_pending\t1"),
        "{}",
        col_stats.stdout
    );
    let def_stats = runv(&["query", "--addr", &addr, "--op", "stats"]).unwrap();
    assert!(
        def_stats.stdout.contains("n_trees\t3"),
        "{}",
        def_stats.stdout
    );
    assert!(
        def_stats.stdout.contains("wal_pending\t0"),
        "{}",
        def_stats.stdout
    );

    // Routed compact folds the collection's WAL.
    let out = runv(&[
        "query",
        "--addr",
        &addr,
        "--collection",
        "mut1",
        "--op",
        "compact",
    ])
    .unwrap();
    assert!(out.stdout.contains("generation\t1"), "{}", out.stdout);
    shutdown(&addr, handle);

    // Restart with a budget too small to keep the collection resident:
    // every touch is a cold open from durable state, with the add applied.
    let (addr, handle) = start_catalog_server(&index_dir, catalog_dir, Some(1));
    let col_stats = runv(&[
        "query",
        "--addr",
        &addr,
        "--collection",
        "mut1",
        "--op",
        "stats",
    ])
    .unwrap();
    assert!(
        col_stats.stdout.contains("n_trees\t4"),
        "{}",
        col_stats.stdout
    );
    assert!(
        col_stats.stdout.contains("generation\t1"),
        "{}",
        col_stats.stdout
    );
    // Scores against the mutated collection match the offline run over the
    // same four trees.
    let c1_plus = write(&dir, "c1-plus.nwk", &format!("{C1}{EXTRA}"));
    let offline = runv(&["avgrf", "--refs", &c1_plus, "--queries", &queries_path]).unwrap();
    let routed = runv(&[
        "query",
        "--addr",
        &addr,
        "--collection",
        "mut1",
        "--queries",
        &queries_path,
    ])
    .unwrap();
    assert_eq!(routed.stdout, offline.stdout);
    shutdown(&addr, handle);
}

/// Cross-collection `xavgrf`: scores computed over the two collections'
/// common taxa, with typed refusals for the default index and missing
/// catalogs.
#[test]
fn xavgrf_scores_across_collections_on_common_taxa() {
    let dir = scratch("catalog-xavgrf");
    let index_dir = build_index(&dir, REFS);
    let catalog_dir = dir.join("catalog");

    let (addr, handle) = start_catalog_server(&index_dir, catalog_dir.to_str().unwrap(), None);
    // Six taxa each, four shared (A-D): the cross-collection comparison
    // restricts to the shared four.
    let left = write(&dir, "left.nwk", C1);
    let right = write(
        &dir,
        "right.nwk",
        "((A,G),((C,D),(B,H)));\n((A,B),((C,G),(D,H)));\n",
    );
    runv(&[
        "catalog", "create", "--addr", &addr, "--name", "xl", "--trees", &left,
    ])
    .unwrap();
    runv(&[
        "catalog", "create", "--addr", &addr, "--name", "xr", "--trees", &right,
    ])
    .unwrap();

    let out = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "xavgrf",
        "--refs-collection",
        "xl",
        "--queries-collection",
        "xr",
    ])
    .unwrap();
    assert!(out.stdout.contains("common_taxa\t4"), "{}", out.stdout);
    // One row per tree of the query collection, each a parseable average.
    let rows: Vec<&str> = out.stdout.lines().skip(2).collect();
    assert_eq!(rows.len(), 2, "{}", out.stdout);
    for row in rows {
        let avg: f64 = row.split('\t').nth(1).unwrap().parse().unwrap();
        assert!(avg.is_finite() && avg >= 0.0, "{row}");
    }

    // A collection against itself over identical taxa: the self-pairing
    // rows exist and index 0's average reflects distances to the other
    // trees (sanity anchor, not a full recomputation).
    let self_out = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "xavgrf",
        "--refs-collection",
        "xl",
        "--queries-collection",
        "xl",
    ])
    .unwrap();
    assert!(
        self_out.stdout.contains("common_taxa\t6"),
        "{}",
        self_out.stdout
    );

    // The default index keeps no tree list: xavgrf refuses it, typed.
    let err = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "xavgrf",
        "--refs-collection",
        "default",
        "--queries-collection",
        "xr",
    ])
    .unwrap_err();
    assert!(err.message.contains("default"), "{}", err.message);
    shutdown(&addr, handle);

    // A daemon without a catalog refuses catalog ops with a pointer to the
    // missing flag.
    let (addr, handle) = start_server(&index_dir, None);
    let err = runv(&["catalog", "list", "--addr", &addr]).unwrap_err();
    assert!(err.message.contains("--catalog"), "{}", err.message);
    shutdown(&addr, handle);
}

/// Catalog admin ops: duplicate and invalid names are typed errors, drop
/// makes a collection unroutable, and the reserved default name is
/// protected.
#[test]
fn catalog_admin_errors_are_typed() {
    let dir = scratch("catalog-admin");
    let index_dir = build_index(&dir, REFS);
    let catalog_dir = dir.join("catalog");
    let (addr, handle) = start_catalog_server(&index_dir, catalog_dir.to_str().unwrap(), None);
    let c1_path = write(&dir, "c1.nwk", C1);

    runv(&[
        "catalog", "create", "--addr", &addr, "--name", "dup", "--trees", &c1_path,
    ])
    .unwrap();
    let err = runv(&[
        "catalog", "create", "--addr", &addr, "--name", "dup", "--trees", &c1_path,
    ])
    .unwrap_err();
    assert!(err.message.contains("exists"), "{}", err.message);

    for bad in ["default", "", "a/b", ".hidden"] {
        let err = runv(&[
            "catalog", "create", "--addr", &addr, "--name", bad, "--trees", &c1_path,
        ])
        .unwrap_err();
        assert!(
            err.message.contains("server: ") || err.message.contains("needs"),
            "{bad}: {}",
            err.message
        );
    }

    runv(&["catalog", "drop", "--addr", &addr, "--name", "dup"]).unwrap();
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let err = runv(&[
        "query",
        "--addr",
        &addr,
        "--collection",
        "dup",
        "--queries",
        &queries_path,
    ])
    .unwrap_err();
    assert!(err.message.contains("dup"), "{}", err.message);

    let err = runv(&["catalog", "drop", "--addr", &addr, "--name", "gone"]).unwrap_err();
    assert!(err.message.contains("gone"), "{}", err.message);
    shutdown(&addr, handle);
}

/// The binary wire encoding is negotiated, never assumed: a plain hello
/// answer carries no `encoding` member (byte-compatible with pre-binary
/// servers), a `bin` hello echoes it, and an unknown name is a typed
/// error that leaves the connection usable.
#[test]
fn hello_encoding_negotiation_wire_shapes() {
    let dir = scratch("hello-enc");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let plain = raw_request(&addr, r#"{"v":2,"op":"hello"}"#);
    assert_eq!(plain.get("ok").unwrap().as_bool(), Some(true));
    assert!(plain.get("encoding").is_none(), "{plain}");

    let bin = raw_request(&addr, r#"{"v":2,"op":"hello","encoding":"bin"}"#);
    assert_eq!(bin.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(
        bin.get("encoding").and_then(json::Json::as_str),
        Some("bin")
    );

    let bad = raw_request(&addr, r#"{"v":2,"op":"hello","encoding":"xml"}"#);
    assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));
    assert!(
        bad.get("error")
            .and_then(json::Json::as_str)
            .unwrap()
            .contains("encoding"),
        "{bad}"
    );

    shutdown(&addr, handle);
}

/// Tentpole acceptance: `--format bin` sessions (single-op, from a binary
/// query file, best-query, and pipelined batch mode) answer byte-identical
/// to their Newick twins, and the daemon's per-encoding wire metrics show
/// up in `bfhrf stats`.
#[test]
fn binary_wire_sessions_match_newick_byte_for_byte() {
    let dir = scratch("bin-wire");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let newick = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    let bin = runv(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        &queries_path,
        "--format",
        "bin",
    ])
    .unwrap();
    assert_eq!(bin.code, EXIT_OK);
    assert_eq!(bin.stdout, newick.stdout);

    // The same queries converted to a binary file: sniffed on load,
    // re-encoded on the wire, identical answers.
    let bin_queries = dir.join("queries.phw");
    let conv = runv(&[
        "convert",
        "--in",
        &queries_path,
        "--out",
        bin_queries.to_str().unwrap(),
        "--format",
        "bin",
    ])
    .unwrap();
    assert_eq!(conv.code, EXIT_OK);
    let from_bin_file = runv(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        bin_queries.to_str().unwrap(),
        "--format",
        "bin",
    ])
    .unwrap();
    assert_eq!(from_bin_file.stdout, newick.stdout);

    // Pipelined batch mode under both encodings.
    let many: String = QUERIES.repeat(4);
    let many_path = write(&dir, "many.nwk", &many);
    let newick_batch = runv(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        &many_path,
        "--batch",
        "2",
    ])
    .unwrap();
    let bin_batch = runv(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        &many_path,
        "--batch",
        "2",
        "--format",
        "bin",
    ])
    .unwrap();
    assert_eq!(bin_batch.stdout, newick_batch.stdout);

    // best-query agrees as well.
    let newick_best = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "best-query",
        "--queries",
        &queries_path,
    ])
    .unwrap();
    let bin_best = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "best-query",
        "--queries",
        &queries_path,
        "--format",
        "bin",
    ])
    .unwrap();
    assert_eq!(bin_best.stdout, newick_best.stdout);

    // The daemon counted and timed the binary frames.
    let stats = runv(&["stats", "--addr", &addr]).unwrap();
    assert!(
        stats.stdout.contains("wire_frames_total"),
        "{}",
        stats.stdout
    );
    assert!(stats.stdout.contains("wire_decode_ns"), "{}", stats.stdout);

    shutdown(&addr, handle);
}

/// `--op taxa` lists the server's namespace (the contract binary payloads
/// encode against), and a `--format bin` mutation lands in the WAL as a
/// binary record that replays on the next offline open.
#[test]
fn taxa_op_and_binary_mutations_replay() {
    let dir = scratch("bin-mutate");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let taxa = runv(&["query", "--addr", &addr, "--op", "taxa"]).unwrap();
    assert!(
        taxa.stdout.starts_with("generation\t0\ntaxon\tlabel\n"),
        "{}",
        taxa.stdout
    );
    for label in ["A", "B", "C", "D", "E", "F"] {
        assert!(
            taxa.stdout.contains(&format!("\t{label}\n")),
            "{}",
            taxa.stdout
        );
    }

    let extra_path = write(&dir, "extra.nwk", EXTRA);
    let added = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "add",
        "--trees",
        &extra_path,
        "--format",
        "bin",
    ])
    .unwrap();
    assert_eq!(added.stdout, "applied\t1\nn_trees\t4\n");
    shutdown(&addr, handle);

    // The binary WAL record replays on a cold open.
    let inspect = runv(&["index", "inspect", "--index", &index_dir, "--check"]).unwrap();
    assert!(
        inspect.stdout.contains("wal_pending\t1"),
        "{}",
        inspect.stdout
    );
    assert!(
        inspect.stdout.contains("check\tok (4 trees"),
        "{}",
        inspect.stdout
    );
}
