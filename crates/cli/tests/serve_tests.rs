//! In-process integration tests for `bfhrf index` / `bfhrf serve` /
//! `bfhrf query`: a real TCP server on a loopback port, driven both
//! through raw sockets and through the `query` subcommand.

use bfhrf_cli::server::{ServeConfig, Server};
use bfhrf_cli::{json, run_full, EXIT_BUDGET, EXIT_OK};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

const REFS: &str = "((A,B),((C,D),(E,F)));\n(((A,C),B),(D,(E,F)));\n((A,F),((C,D),(E,B)));\n";
const QUERIES: &str = "((A,B),((C,D),(E,F)));\n((A,E),((C,D),(B,F)));\n";
const EXTRA: &str = "((A,B),((C,E),(D,F)));\n";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfhrf-serve-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p.to_str().unwrap().to_string()
}

fn runv(parts: &[&str]) -> Result<bfhrf_cli::CmdOutcome, bfhrf_cli::CliError> {
    run_full(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

/// Build an index directory from `refs` and return its path.
fn build_index(dir: &std::path::Path, refs: &str) -> String {
    let refs_path = write(dir, "refs.nwk", refs);
    let index_dir = dir.join("index");
    let out = runv(&[
        "index",
        "build",
        "--refs",
        &refs_path,
        "--out",
        index_dir.to_str().unwrap(),
    ])
    .unwrap();
    assert_eq!(out.code, EXIT_OK);
    assert!(out.stdout.contains("generation\t0"), "{}", out.stdout);
    index_dir.to_str().unwrap().to_string()
}

/// Start a server over `index_dir` on a free loopback port; returns the
/// address and the join handle for `run()`.
fn start_server(
    index_dir: &str,
    timeout_ms: Option<u64>,
) -> (String, std::thread::JoinHandle<u64>) {
    let srv = Server::bind(&ServeConfig {
        index_dir: PathBuf::from(index_dir),
        addr: "127.0.0.1:0".into(),
        threads: 3,
        mem_budget: None,
        timeout_ms,
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    let handle = std::thread::spawn(move || srv.run().unwrap());
    (addr, handle)
}

fn raw_request(addr: &str, request: &str) -> json::Json {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(format!("{request}\n").as_bytes()).unwrap();
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).unwrap();
    json::parse(line.trim()).unwrap()
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<u64>) -> u64 {
    let resp = raw_request(addr, r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
    handle.join().unwrap()
}

/// The acceptance round trip: a served `avgrf` answer must be
/// byte-identical to the offline `bfhrf avgrf` report on the same data.
#[test]
fn served_avgrf_matches_offline() {
    let dir = scratch("match");
    let refs_path = write(&dir, "refs.nwk", REFS);
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let offline = runv(&["avgrf", "--refs", &refs_path, "--queries", &queries_path]).unwrap();
    let served = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    assert_eq!(served.code, EXIT_OK);
    assert_eq!(served.stdout, offline.stdout);

    // The flag variants agree too.
    for flag in ["--normalized", "--halved"] {
        let offline = runv(&[
            "avgrf",
            "--refs",
            &refs_path,
            "--queries",
            &queries_path,
            flag,
        ])
        .unwrap();
        let served = runv(&["query", "--addr", &addr, "--queries", &queries_path, flag]).unwrap();
        assert_eq!(served.stdout, offline.stdout, "with {flag}");
    }

    // best-query matches the offline `best` subcommand.
    let offline = runv(&["best", "--refs", &refs_path, "--queries", &queries_path]).unwrap();
    let served = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "best-query",
        "--queries",
        &queries_path,
    ])
    .unwrap();
    assert_eq!(served.stdout, offline.stdout);

    let served_total = shutdown(&addr, handle);
    assert!(served_total >= 5, "served {served_total}");
}

/// Admin ops over the wire: add/remove/compact mutate the served hash and
/// persist across a server restart.
#[test]
fn admin_ops_mutate_and_persist() {
    let dir = scratch("admin");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let extra_path = write(&dir, "extra.nwk", EXTRA);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let before = raw_request(&addr, r#"{"op":"stats"}"#);
    assert_eq!(before.get("n_trees").unwrap().as_u64(), Some(3));
    assert_eq!(before.get("generation").unwrap().as_u64(), Some(0));

    // Add a tree over the wire; stats and answers change immediately.
    let add = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "add",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    assert!(add.stdout.contains("applied\t1"), "{}", add.stdout);
    assert!(add.stdout.contains("n_trees\t4"), "{}", add.stdout);
    let stats = raw_request(&addr, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("n_trees").unwrap().as_u64(), Some(4));
    assert_eq!(stats.get("wal_pending").unwrap().as_u64(), Some(1));

    // The served answer now reflects 4 reference trees.
    let served = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    let offline_refs = write(&dir, "refs4.nwk", &format!("{REFS}{EXTRA}"));
    let offline = runv(&["avgrf", "--refs", &offline_refs, "--queries", &queries_path]).unwrap();
    assert_eq!(served.stdout, offline.stdout);

    // Remove it again, then compact: generation bumps, WAL drains.
    let rm = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "remove",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    assert!(rm.stdout.contains("n_trees\t3"), "{}", rm.stdout);
    let compacted = runv(&["query", "--addr", &addr, "--op", "compact"]).unwrap();
    assert!(
        compacted.stdout.contains("generation\t1"),
        "{}",
        compacted.stdout
    );
    let stats = runv(&["query", "--addr", &addr, "--op", "stats"]).unwrap();
    assert!(stats.stdout.contains("wal_pending\t0"), "{}", stats.stdout);

    shutdown(&addr, handle);

    // Restart over the same directory: the compacted state survived.
    let (addr, handle) = start_server(&index_dir, None);
    let stats = raw_request(&addr, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("generation").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("n_trees").unwrap().as_u64(), Some(3));
    shutdown(&addr, handle);
}

/// Malformed requests are answered (not dropped), the connection stays
/// usable, and removing an unknown tree fails without mutating anything.
#[test]
fn protocol_errors_are_answered_and_recoverable() {
    let dir = scratch("errors");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ask = |req: &str| -> json::Json {
        stream.write_all(format!("{req}\n").as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        json::parse(line.trim()).unwrap()
    };

    for bad in [
        "this is not json",
        r#"{"no_op":1}"#,
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"avgrf"}"#,
        r#"{"op":"avgrf","queries":[42]}"#,
        r#"{"op":"avgrf","queries":["((A,Zed),B);"]}"#,
        r#"{"op":"remove","trees":["((A,B),((C,E),(D,F)));"]}"#,
    ] {
        let resp = ask(bad);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{bad}");
        assert!(resp.get("error").unwrap().as_str().is_some(), "{bad}");
    }
    // Same connection still answers good requests.
    let resp = ask(r#"{"op":"stats"}"#);
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(resp.get("n_trees").unwrap().as_u64(), Some(3));
    // Shut down while the connection is still open: the polling read loop
    // must notice the flag instead of blocking until the idle timeout.
    shutdown(&addr, handle);
    drop(reader);
    drop(stream);
}

/// Per-request budgets surface as the protocol's `budget` code, which the
/// query client maps to exit code 3 — and the server keeps serving. A
/// zero-millisecond deadline means every scoring request is already over
/// budget when its guard is armed.
#[test]
fn budget_refusal_is_exit_3_and_recoverable() {
    let dir = scratch("budget");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, Some(0));

    let err = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap_err();
    assert_eq!(err.code, EXIT_BUDGET, "{}", err.message);
    assert!(err.message.contains("server:"), "{}", err.message);

    // stats carries no per-request guard, so the daemon still answers.
    let stats = runv(&["query", "--addr", &addr, "--op", "stats"]).unwrap();
    assert!(stats.stdout.contains("n_trees\t3"), "{}", stats.stdout);
    shutdown(&addr, handle);
}

/// Concurrent clients hammering avgrf all get byte-identical answers.
/// With 8 clients against 3 connection slots some connections get shed
/// with a typed `busy` frame; `--retries` absorbs the sheds, so every
/// client still converges on the same bytes.
#[test]
fn concurrent_queries_agree() {
    let dir = scratch("concurrent");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let want = runv(&["query", "--addr", &addr, "--queries", &queries_path])
        .unwrap()
        .stdout;
    let answers: Vec<String> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let addr = addr.clone();
                let queries_path = queries_path.clone();
                scope.spawn(move || {
                    (0..5)
                        .map(|_| {
                            runv(&[
                                "query",
                                "--addr",
                                &addr,
                                "--queries",
                                &queries_path,
                                "--retries",
                                "20",
                                "--backoff-ms",
                                "10",
                            ])
                            .unwrap()
                            .stdout
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(answers.len(), 40);
    for a in &answers {
        assert_eq!(a, &want);
    }
    let served = shutdown(&addr, handle);
    assert!(served >= 41, "served {served}");
}

/// `serve --port-file` + `query --port-file` close the loop without the
/// caller ever knowing the port; `index inspect` reads the same state.
#[test]
fn port_file_and_inspect() {
    let dir = scratch("portfile");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);

    let inspect = runv(&["index", "inspect", "--index", &index_dir, "--check"]).unwrap();
    assert!(inspect.stdout.contains("n_trees\t3"), "{}", inspect.stdout);
    assert!(inspect.stdout.contains("check\tok"), "{}", inspect.stdout);

    // Drive serve through the real subcommand in a thread; sync on the
    // port file like the CI smoke script does.
    let port_file = dir.join("port");
    let serve_args: Vec<String> = [
        "serve",
        "--index",
        &index_dir,
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "2",
        "--port-file",
        port_file.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let handle = std::thread::spawn(move || run_full(&serve_args).unwrap());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !port_file.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "port file never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let out = runv(&[
        "query",
        "--port-file",
        port_file.to_str().unwrap(),
        "--queries",
        &queries_path,
    ])
    .unwrap();
    assert!(out.stdout.starts_with("query\tavg_rf\n"), "{}", out.stdout);

    let bye = runv(&[
        "query",
        "--port-file",
        port_file.to_str().unwrap(),
        "--op",
        "shutdown",
    ])
    .unwrap();
    assert_eq!(bye.stdout, "shutdown\tok\n");
    let outcome = handle.join().unwrap();
    assert!(outcome.stdout.starts_with("served\t"), "{}", outcome.stdout);
}

/// Find one exposition series by name and exact label set.
fn find_series<'a>(
    metrics: &'a json::Json,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a json::Json> {
    metrics.get("series")?.as_arr()?.iter().find(|s| {
        let n_labels = match s.get("labels") {
            Some(json::Json::Obj(pairs)) => pairs.len(),
            _ => return false,
        };
        s.get("name").and_then(|n| n.as_str()) == Some(name)
            && n_labels == labels.len()
            && labels.iter().all(|(k, v)| {
                s.get("labels")
                    .and_then(|l| l.get(k))
                    .and_then(|x| x.as_str())
                    == Some(*v)
            })
    })
}

/// The `stats` response carries a `metrics` payload of exposition JSON
/// that round-trips through the shared json module, holds the full
/// pre-registered series set (every op x outcome cell exists before any
/// request of that kind arrives), and keeps counting across a
/// snapshot-generation swap mid-stream.
///
/// The registry is process-global and tests share one binary, so every
/// numeric assertion is `>=` or a delta — parallel tests may also count.
#[test]
fn stats_metrics_schema_and_snapshot_swap() {
    let dir = scratch("metrics");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let extra_path = write(&dir, "extra.nwk", EXTRA);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    for _ in 0..3 {
        runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    }
    let resp = raw_request(&addr, r#"{"op":"stats"}"#);
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
    let metrics = resp.get("metrics").expect("stats carries metrics");

    // Round trip: exposition output is exactly what the parser reads back.
    assert_eq!(json::parse(&metrics.to_string()).unwrap(), *metrics);

    // Schema stability: every op x outcome cell pre-registered at bind.
    for op in [
        "hello",
        "avgrf",
        "best-query",
        "batch",
        "ping",
        "stats",
        "add",
        "remove",
        "compact",
        "shutdown",
        "unknown",
    ] {
        for outcome in ["ok", "error", "budget", "cancelled", "busy"] {
            let s = find_series(
                metrics,
                "serve_requests_total",
                &[("op", op), ("outcome", outcome)],
            )
            .unwrap_or_else(|| panic!("missing series op={op} outcome={outcome}"));
            assert_eq!(s.get("kind").unwrap().as_str(), Some("counter"));
        }
    }

    // The burst above was counted and timed.
    let ok = find_series(
        metrics,
        "serve_requests_total",
        &[("op", "avgrf"), ("outcome", "ok")],
    )
    .unwrap();
    let ok_before = ok.get("value").unwrap().as_u64().unwrap();
    assert!(ok_before >= 3, "avgrf ok = {ok_before}");
    let lat = find_series(metrics, "serve_request_ns", &[("op", "avgrf")]).unwrap();
    assert_eq!(lat.get("kind").unwrap().as_str(), Some("histogram"));
    assert!(lat.get("count").unwrap().as_u64().unwrap() >= 3);
    for key in ["sum", "max", "mean", "p50", "p90", "p99"] {
        assert!(
            lat.get(key).unwrap().as_f64().unwrap() > 0.0,
            "{key} not positive"
        );
    }
    assert!(!lat.get("buckets").unwrap().as_arr().unwrap().is_empty());
    let swaps_before = find_series(metrics, "serve_snapshot_swaps_total", &[])
        .unwrap()
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();

    // Swap the snapshot generation mid-stream (add publishes a new Arc),
    // keep querying, and the same counters keep counting.
    runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "add",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap();
    let resp = raw_request(&addr, r#"{"op":"stats"}"#);
    let metrics = resp.get("metrics").unwrap();
    assert_eq!(json::parse(&metrics.to_string()).unwrap(), *metrics);
    let swaps_after = find_series(metrics, "serve_snapshot_swaps_total", &[])
        .unwrap()
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        swaps_after > swaps_before,
        "{swaps_before} -> {swaps_after}"
    );
    let ok_after = find_series(
        metrics,
        "serve_requests_total",
        &[("op", "avgrf"), ("outcome", "ok")],
    )
    .unwrap()
    .get("value")
    .unwrap()
    .as_u64()
    .unwrap();
    assert!(ok_after > ok_before, "{ok_before} -> {ok_after}");
    let adds = find_series(metrics, "wal_appends_total", &[("op", "add")])
        .unwrap()
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(adds >= 1);

    // The human renderer exposes the same numbers without --json.
    let human = runv(&["stats", "--addr", &addr]).unwrap();
    assert!(
        human
            .stdout
            .contains("serve_requests_total{op=avgrf,outcome=ok}"),
        "{}",
        human.stdout
    );
    assert!(human.stdout.contains("serve_request_ns{op=avgrf}"));
    shutdown(&addr, handle);
}

/// A budget-refused request is visible in the metrics under its own
/// outcome label, and the client surfaces the server's outcome code.
#[test]
fn budget_outcome_is_counted_and_surfaced() {
    let dir = scratch("metrics-budget");
    let queries_path = write(&dir, "queries.nwk", QUERIES);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, Some(0));

    let err = runv(&["query", "--addr", &addr, "--queries", &queries_path]).unwrap_err();
    assert_eq!(err.code, EXIT_BUDGET);
    assert!(err.message.contains("server: ["), "{}", err.message);

    let resp = raw_request(&addr, r#"{"op":"stats"}"#);
    let metrics = resp.get("metrics").unwrap();
    let refused: u64 = ["budget", "cancelled"]
        .iter()
        .map(|outcome| {
            find_series(
                metrics,
                "serve_requests_total",
                &[("op", "avgrf"), ("outcome", outcome)],
            )
            .unwrap()
            .get("value")
            .unwrap()
            .as_u64()
            .unwrap()
        })
        .sum();
    assert!(refused >= 1, "no refused avgrf counted");
    shutdown(&addr, handle);
}

/// Shutdown must wake a worker blocked in `read` on an idle connection at
/// once. The socket read timeout is the 300 s idle window — without the
/// connection-registry interrupt the join below would hang for minutes,
/// not finish in moments.
#[test]
fn shutdown_interrupts_idle_connections_immediately() {
    let dir = scratch("serve-idle-shutdown");
    let index_dir = build_index(&dir, "((A,B),(C,D));\n((A,C),(B,D));\n");
    let (addr, handle) = start_server(&index_dir, None);

    // Park a connection that never sends a byte: a worker blocks reading it.
    let idle = TcpStream::connect(&addr).unwrap();
    // Let the worker reach the blocking read before shutdown fires.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let begin = std::time::Instant::now();
    shutdown(&addr, handle);
    assert!(
        begin.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?} with an idle connection parked",
        begin.elapsed()
    );
    drop(idle);
}

// ---------------------------------------------------------------------------
// Wire protocol v2: hello, batch, pipelining
// ---------------------------------------------------------------------------

/// A persistent raw connection with split read/write halves, for tests
/// that pipeline frames or deliver partial ones.
struct RawConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn open(addr: &str) -> RawConn {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        RawConn { stream, reader }
    }

    fn send(&mut self, frame: &str) {
        self.stream
            .write_all(format!("{frame}\n").as_bytes())
            .unwrap();
    }

    fn recv(&mut self) -> json::Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        json::parse(line.trim()).unwrap()
    }
}

/// The v2 handshake answers the protocol version and batch ceiling, and
/// the same connection keeps serving v1 frames afterwards (dialects mix
/// freely on one connection).
#[test]
fn hello_handshake_reports_version_and_ceiling() {
    let dir = scratch("hello");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut conn = RawConn::open(&addr);
    conn.send(r#"{"v":2,"op":"hello"}"#);
    let resp = conn.recv();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(resp.get("v").unwrap().as_u64(), Some(2));
    assert_eq!(
        resp.get("max_batch").unwrap().as_u64(),
        Some(bfhrf_cli::proto::MAX_BATCH as u64)
    );
    // A v1 frame on the same connection still answers.
    conn.send(r#"{"op":"stats"}"#);
    assert_eq!(conn.recv().get("ok").unwrap().as_bool(), Some(true));
    // Frames claiming a future protocol version fail loudly, typed.
    conn.send(r#"{"v":9,"op":"stats"}"#);
    let resp = conn.recv();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
    assert!(
        resp.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unsupported protocol version"),
        "{resp}"
    );
    shutdown(&addr, handle);
}

/// Pipelined frames — including one delivered in two partial writes — are
/// answered strictly in request order with their ids echoed.
#[test]
fn pipelined_partial_frames_answer_in_order() {
    let dir = scratch("pipeline");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut conn = RawConn::open(&addr);
    let frame = |id: u64| {
        format!(r#"{{"v":2,"op":"batch","id":{id},"queries":["((A,B),((C,D),(E,F)));"]}}"#)
    };
    // Burst of three frames in one write...
    let burst = format!("{}\n{}\n{}\n", frame(10), frame(11), frame(12));
    conn.stream.write_all(burst.as_bytes()).unwrap();
    // ...then a fourth delivered in two halves with a pause in between:
    // the reassembly path must treat it exactly like a whole frame.
    let late = format!("{}\n", frame(13));
    let (a, b) = late.as_bytes().split_at(late.len() / 2);
    conn.stream.write_all(a).unwrap();
    conn.stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    conn.stream.write_all(b).unwrap();

    for expect in [10u64, 11, 12, 13] {
        let resp = conn.recv();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert_eq!(resp.get("id").unwrap().as_u64(), Some(expect), "{resp}");
        assert_eq!(resp.get("scores").unwrap().as_arr().unwrap().len(), 1);
    }
    shutdown(&addr, handle);
}

/// Admin and query ops interleaved on one pipelined connection answer in
/// order, and each batch reports the snapshot that answered it: the batch
/// before the `add` sees the old hash, the one after sees the new one.
#[test]
fn interleaved_admin_and_query_frames_pin_their_snapshots() {
    let dir = scratch("interleave");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut conn = RawConn::open(&addr);
    let batch = |id: u64| {
        format!(r#"{{"v":2,"op":"batch","id":{id},"queries":["((A,B),((C,D),(E,F)));"]}}"#)
    };
    let add = format!(r#"{{"op":"add","trees":["{}"]}}"#, EXTRA.trim());
    let burst = format!(
        "{}\n{add}\n{}\n{}\n",
        batch(1),
        batch(2),
        r#"{"op":"stats"}"#
    );
    conn.stream.write_all(burst.as_bytes()).unwrap();

    let before = conn.recv();
    assert_eq!(before.get("id").unwrap().as_u64(), Some(1));
    let applied = conn.recv();
    assert_eq!(applied.get("applied").unwrap().as_u64(), Some(1));
    let after = conn.recv();
    assert_eq!(after.get("id").unwrap().as_u64(), Some(2));
    let stats = conn.recv();
    assert_eq!(stats.get("n_trees").unwrap().as_u64(), Some(4));

    let n_refs = |resp: &json::Json| {
        resp.get("scores").unwrap().as_arr().unwrap()[0]
            .get("n_refs")
            .unwrap()
            .as_u64()
            .unwrap()
    };
    assert_eq!(n_refs(&before), 3, "{before}");
    assert_eq!(n_refs(&after), 4, "{after}");
    let snap = |resp: &json::Json| resp.get("snap").unwrap().as_u64().unwrap();
    assert!(
        snap(&after) > snap(&before),
        "snap did not advance: {} -> {}",
        snap(&before),
        snap(&after)
    );
    shutdown(&addr, handle);
}

/// A batch above the server's ceiling is refused with a typed error and
/// the connection keeps serving.
#[test]
fn oversized_batch_is_rejected_and_connection_survives() {
    let dir = scratch("oversize");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let tree = "\"((A,B),((C,D),(E,F)));\"";
    let queries = vec![tree; bfhrf_cli::proto::MAX_BATCH + 1].join(",");
    let mut conn = RawConn::open(&addr);
    conn.send(&format!(r#"{{"v":2,"op":"batch","queries":[{queries}]}}"#));
    let resp = conn.recv();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(resp.get("code").unwrap().as_str(), Some("error"));
    assert!(
        resp.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("max_batch"),
        "{resp}"
    );
    // Same connection, conforming batch: answers fine.
    conn.send(r#"{"v":2,"op":"batch","queries":["((A,B),((C,D),(E,F)));"]}"#);
    assert_eq!(conn.recv().get("ok").unwrap().as_bool(), Some(true));
    shutdown(&addr, handle);
}

/// Batches racing concurrent admin mutations: every row of a batch must
/// come from one snapshot (uniform `n_refs`), and the `snap` ids a
/// connection observes never go backwards.
#[test]
fn mid_batch_snapshot_swaps_keep_batches_single_generation() {
    let dir = scratch("swap-race");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mutator = {
        let addr = addr.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let add = format!(r#"{{"op":"add","trees":["{}"]}}"#, EXTRA.trim());
            let remove = format!(r#"{{"op":"remove","trees":["{}"]}}"#, EXTRA.trim());
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                assert_eq!(
                    raw_request(&addr, &add).get("ok").unwrap().as_bool(),
                    Some(true)
                );
                assert_eq!(
                    raw_request(&addr, &remove).get("ok").unwrap().as_bool(),
                    Some(true)
                );
            }
        })
    };

    let mut conn = RawConn::open(&addr);
    // Two queries per batch so a torn snapshot would show as mixed n_refs
    // within one frame.
    let frame = |id: u64| {
        format!(
            r#"{{"v":2,"op":"batch","id":{id},"queries":["((A,B),((C,D),(E,F)));","((A,E),((C,D),(B,F)));"]}}"#
        )
    };
    let mut last_snap = 0u64;
    for round in 0..30u64 {
        conn.send(&frame(round));
        let resp = conn.recv();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        let rows = resp.get("scores").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        let refs: Vec<u64> = rows
            .iter()
            .map(|r| r.get("n_refs").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(refs[0], refs[1], "torn batch in round {round}: {resp}");
        assert!(refs[0] == 3 || refs[0] == 4, "{resp}");
        let snap = resp.get("snap").unwrap().as_u64().unwrap();
        assert!(
            snap >= last_snap,
            "snap went backwards: {last_snap} -> {snap}"
        );
        last_snap = snap;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    mutator.join().unwrap();
    shutdown(&addr, handle);
}

/// `bfhrf query --batch N` output is byte-identical to the offline
/// `avgrf` table regardless of frame size, and flags ride along.
#[test]
fn client_batch_mode_matches_offline_avgrf() {
    let dir = scratch("client-batch");
    let refs_path = write(&dir, "refs.nwk", REFS);
    // Enough queries to span several frames at --batch 2.
    let many: String = QUERIES.repeat(4);
    let queries_path = write(&dir, "queries.nwk", &many);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let offline = runv(&["avgrf", "--refs", &refs_path, "--queries", &queries_path]).unwrap();
    for batch in ["1", "2", "64"] {
        let served = runv(&[
            "query",
            "--addr",
            &addr,
            "--queries",
            &queries_path,
            "--batch",
            batch,
        ])
        .unwrap();
        assert_eq!(served.code, EXIT_OK, "--batch {batch}");
        assert_eq!(served.stdout, offline.stdout, "--batch {batch}");
    }
    // Flags flow through batch frames too.
    let offline = runv(&[
        "avgrf",
        "--refs",
        &refs_path,
        "--queries",
        &queries_path,
        "--normalized",
    ])
    .unwrap();
    let served = runv(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        &queries_path,
        "--batch",
        "3",
        "--normalized",
    ])
    .unwrap();
    assert_eq!(served.stdout, offline.stdout);
    // --batch outside avgrf is a client-side error.
    let err = runv(&["query", "--addr", &addr, "--op", "stats", "--batch", "2"]).unwrap_err();
    assert!(err.message.contains("--batch"), "{}", err.message);
    shutdown(&addr, handle);
}

// ---------------------------------------------------------------------------
// Failure handling: ping, busy shedding, graceful drain, retries
// ---------------------------------------------------------------------------

/// The v2 `ping` op answers a health summary — generation, WAL depth,
/// uptime — through both the raw wire and the `query` client, and the
/// mirrored WAL depth tracks mutations and compactions.
#[test]
fn ping_reports_generation_wal_depth_and_uptime() {
    let dir = scratch("ping");
    let extra_path = write(&dir, "extra.nwk", EXTRA);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let pong = raw_request(&addr, r#"{"v":2,"op":"ping"}"#);
    assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true), "{pong}");
    assert_eq!(pong.get("pong").unwrap().as_bool(), Some(true), "{pong}");
    assert_eq!(pong.get("generation").unwrap().as_u64(), Some(0));
    assert_eq!(pong.get("wal_pending").unwrap().as_u64(), Some(0));
    assert!(pong.get("uptime_ms").unwrap().as_u64().is_some(), "{pong}");

    // A mutation shows up in the mirrored WAL depth without the ping
    // touching the admin lock.
    runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "add",
        "--trees",
        &extra_path,
    ])
    .unwrap();
    let pong = raw_request(&addr, r#"{"v":2,"op":"ping"}"#);
    assert_eq!(pong.get("wal_pending").unwrap().as_u64(), Some(1), "{pong}");

    // Compaction drains it and bumps the generation.
    runv(&["query", "--addr", &addr, "--op", "compact"]).unwrap();
    let pong = raw_request(&addr, r#"{"v":2,"op":"ping"}"#);
    assert_eq!(pong.get("generation").unwrap().as_u64(), Some(1), "{pong}");
    assert_eq!(pong.get("wal_pending").unwrap().as_u64(), Some(0), "{pong}");

    // The query client renders the same numbers as a table.
    let out = runv(&["query", "--addr", &addr, "--op", "ping"]).unwrap();
    assert!(out.stdout.contains("generation\t1"), "{}", out.stdout);
    assert!(out.stdout.contains("wal_pending\t0"), "{}", out.stdout);
    assert!(out.stdout.contains("uptime_ms\t"), "{}", out.stdout);
    shutdown(&addr, handle);
}

/// At the connection ceiling the daemon sheds new connections with a
/// typed `busy` frame instead of queueing them: a plain client surfaces
/// it as exit 1, a retrying client rides it out once a slot frees up.
#[test]
fn busy_shed_is_typed_and_absorbed_by_retries() {
    let dir = scratch("busy");
    let index_dir = build_index(&dir, REFS);
    let srv = Server::bind(&ServeConfig {
        index_dir: PathBuf::from(&index_dir),
        addr: "127.0.0.1:0".into(),
        threads: 1,
        mem_budget: None,
        timeout_ms: None,
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    let handle = std::thread::spawn(move || srv.run().unwrap());

    // Occupy the single slot with a connection that never speaks.
    let hog = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));

    // Raw connection: one typed busy frame, then close.
    let mut shed = BufReader::new(TcpStream::connect(&addr).unwrap());
    let mut line = String::new();
    shed.read_line(&mut line).unwrap();
    let resp = json::parse(line.trim()).unwrap();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{resp}");
    assert_eq!(resp.get("code").unwrap().as_str(), Some("busy"), "{resp}");
    assert_eq!(
        resp.get("outcome").unwrap().as_str(),
        Some("busy"),
        "{resp}"
    );
    line.clear();
    assert_eq!(
        shed.read_line(&mut line).unwrap(),
        0,
        "shed conn not closed"
    );

    // A client without retries maps busy to exit 1.
    let err = runv(&["query", "--addr", &addr, "--op", "ping"]).unwrap_err();
    assert_eq!(err.code, 1, "{}", err.message);
    assert!(err.message.contains("busy"), "{}", err.message);

    // Free the slot shortly; a retrying client succeeds through the sheds.
    let freer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(300));
        drop(hog);
    });
    let out = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "ping",
        "--retries",
        "10",
        "--backoff-ms",
        "50",
    ])
    .unwrap();
    assert!(out.stdout.contains("generation\t0"), "{}", out.stdout);
    freer.join().unwrap();

    // The single slot may still be draining the previous client's
    // connection, so raw requests here can themselves get shed; retry
    // past any busy frame.
    let retry_ok = |req: &str| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let resp = raw_request(&addr, req);
            if resp.get("ok").unwrap().as_bool() == Some(true) {
                return resp;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "request kept getting shed: {resp}"
            );
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    };

    // The sheds were counted.
    let stats = retry_ok(r#"{"op":"stats"}"#);
    let metrics = stats.get("metrics").unwrap();
    let sheds = find_series(metrics, "serve_busy_rejections_total", &[])
        .unwrap()
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(sheds >= 2, "busy sheds = {sheds}");
    retry_ok(r#"{"op":"shutdown"}"#);
    handle.join().unwrap();
}

/// Shutdown drains gracefully: a pipelined connection with frames already
/// buffered server-side gets an answer for every one of them before the
/// close, even though another connection triggered the shutdown.
#[test]
fn shutdown_drains_buffered_pipelined_frames() {
    let dir = scratch("drain");
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let mut conn = RawConn::open(&addr);
    let frame = |id: u64| {
        format!(r#"{{"v":2,"op":"batch","id":{id},"queries":["((A,B),((C,D),(E,F)));"]}}"#)
    };
    let burst: String = (0..6).map(|i| format!("{}\n", frame(i))).collect();
    conn.stream.write_all(burst.as_bytes()).unwrap();
    conn.stream.flush().unwrap();
    // Let the burst land in the handler's read buffer before shutdown.
    std::thread::sleep(std::time::Duration::from_millis(150));

    let served = shutdown(&addr, handle);
    // Every buffered frame was answered, in order, before the half-close.
    for expect in 0..6u64 {
        let resp = conn.recv();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert_eq!(resp.get("id").unwrap().as_u64(), Some(expect), "{resp}");
    }
    // Then a clean EOF.
    let mut line = String::new();
    assert_eq!(conn.reader.read_line(&mut line).unwrap(), 0);
    assert!(served >= 7, "served {served}");
}

/// A daemon restart in the middle of a pipelined batch session: the
/// retrying client reconnects, re-handshakes, resends every unanswered
/// frame, and the final table is byte-identical to an offline run. This
/// is the in-process version of the chaos smoke's kill-and-restart.
#[test]
fn mid_batch_restart_with_retries_is_byte_identical() {
    let dir = scratch("restart");
    let refs_path = write(&dir, "refs.nwk", REFS);
    // Enough single-query frames that the restart lands mid-session.
    let many: String = QUERIES.repeat(40);
    let queries_path = write(&dir, "queries.nwk", &many);
    let index_dir = build_index(&dir, REFS);
    let (addr, handle) = start_server(&index_dir, None);

    let offline = runv(&["avgrf", "--refs", &refs_path, "--queries", &queries_path]).unwrap();

    let client = {
        let addr = addr.clone();
        let queries_path = queries_path.clone();
        std::thread::spawn(move || {
            runv(&[
                "query",
                "--addr",
                &addr,
                "--queries",
                &queries_path,
                "--batch",
                "1",
                "--retries",
                "15",
                "--backoff-ms",
                "50",
            ])
        })
    };

    // Stop the daemon mid-session, then rebind on the SAME port — the
    // dead listener's port may linger, so retry the bind briefly.
    std::thread::sleep(std::time::Duration::from_millis(40));
    shutdown(&addr, handle);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let srv = loop {
        match Server::bind(&ServeConfig {
            index_dir: PathBuf::from(&index_dir),
            addr: addr.clone(),
            threads: 3,
            mem_budget: None,
            timeout_ms: None,
        }) {
            Ok(srv) => break srv,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "could not rebind {addr}: {}",
                    e.message
                );
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    };
    let handle = std::thread::spawn(move || srv.run().unwrap());

    let out = client.join().unwrap().expect("retrying client failed");
    assert_eq!(out.code, EXIT_OK);
    assert_eq!(out.stdout, offline.stdout, "restart changed the answer");
    shutdown(&addr, handle);
}
