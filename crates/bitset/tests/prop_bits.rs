//! Property-based tests: `Bits` set algebra must agree with a naive
//! `HashSet<usize>` model on arbitrary inputs.

use phylo_bitset::Bits;
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a length in 1..=300 and a set of indices below it.
fn len_and_indices() -> impl Strategy<Value = (usize, Vec<usize>, Vec<usize>)> {
    (1usize..=300).prop_flat_map(|len| {
        (
            Just(len),
            proptest::collection::vec(0..len, 0..=len),
            proptest::collection::vec(0..len, 0..=len),
        )
    })
}

fn model(idx: &[usize]) -> HashSet<usize> {
    idx.iter().copied().collect()
}

proptest! {
    #[test]
    fn union_matches_model((len, ia, ib) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let b = Bits::from_indices(len, ib.iter().copied());
        let want: HashSet<_> = model(&ia).union(&model(&ib)).copied().collect();
        let got: HashSet<_> = a.union(&b).iter_ones().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn intersection_matches_model((len, ia, ib) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let b = Bits::from_indices(len, ib.iter().copied());
        let want: HashSet<_> = model(&ia).intersection(&model(&ib)).copied().collect();
        let got: HashSet<_> = a.intersection(&b).iter_ones().collect();
        prop_assert_eq!(got.len() as u32, a.intersection_count(&b));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn difference_matches_model((len, ia, ib) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let b = Bits::from_indices(len, ib.iter().copied());
        let want: HashSet<_> = model(&ia).difference(&model(&ib)).copied().collect();
        let got: HashSet<_> = a.difference(&b).iter_ones().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn symmetric_difference_matches_model((len, ia, ib) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let b = Bits::from_indices(len, ib.iter().copied());
        let want: HashSet<_> =
            model(&ia).symmetric_difference(&model(&ib)).copied().collect();
        let got: HashSet<_> = a.symmetric_difference(&b).iter_ones().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn complement_partitions_universe((len, ia, _) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let c = a.complemented();
        prop_assert!(a.is_disjoint(&c));
        prop_assert_eq!(a.union(&c), Bits::ones(len));
        prop_assert_eq!(a.count_ones() + c.count_ones(), len as u32);
        prop_assert_eq!(c.complemented(), a);
    }

    #[test]
    fn subset_relations((len, ia, ib) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let b = Bits::from_indices(len, ib.iter().copied());
        let i = a.intersection(&b);
        let u = a.union(&b);
        prop_assert!(i.is_subset(&a) && i.is_subset(&b));
        prop_assert!(u.is_superset(&a) && u.is_superset(&b));
        prop_assert_eq!(a.is_subset(&b), model(&ia).is_subset(&model(&ib)));
        prop_assert_eq!(a.is_disjoint(&b), model(&ia).is_disjoint(&model(&ib)));
    }

    #[test]
    fn iter_ones_sorted_and_bounded((len, ia, _) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let ones = a.to_indices();
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ones.iter().all(|&i| i < len));
        prop_assert_eq!(ones.len() as u32, a.count_ones());
        prop_assert_eq!(ones.first().copied(), a.first_one());
        prop_assert_eq!(ones.last().copied(), a.last_one());
    }

    #[test]
    fn display_roundtrip((len, ia, _) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let s = a.to_string();
        prop_assert_eq!(Bits::from_bitstring(&s).unwrap(), a);
    }

    #[test]
    fn hash_eq_agreement((len, ia, ib) in len_and_indices()) {
        use std::hash::BuildHasher;
        let a = Bits::from_indices(len, ia.iter().copied());
        let b = Bits::from_indices(len, ib.iter().copied());
        let bh = phylo_bitset::BuildWordHasher;
        if a == b {
            prop_assert_eq!(bh.hash_one(&a), bh.hash_one(&b));
        }
    }

    #[test]
    fn compression_roundtrips((len, ia, _) in len_and_indices()) {
        use phylo_bitset::compress::{compress, decompress};
        let a = Bits::from_indices(len, ia.iter().copied());
        let enc = compress(&a);
        let dec = decompress(&enc, len).expect("roundtrip");
        prop_assert_eq!(dec, a);
    }

    #[test]
    fn compression_is_injective_on_pairs((len, ia, ib) in len_and_indices()) {
        use phylo_bitset::compress::compress;
        let a = Bits::from_indices(len, ia.iter().copied());
        let b = Bits::from_indices(len, ib.iter().copied());
        prop_assert_eq!(a == b, compress(&a) == compress(&b));
    }

    #[test]
    fn ordering_is_consistent((len, ia, ib) in len_and_indices()) {
        let a = Bits::from_indices(len, ia.iter().copied());
        let b = Bits::from_indices(len, ib.iter().copied());
        match a.cmp(&b) {
            std::cmp::Ordering::Equal => prop_assert_eq!(&a, &b),
            std::cmp::Ordering::Less => prop_assert!(b > a.clone()),
            std::cmp::Ordering::Greater => prop_assert!(b < a.clone()),
        }
    }
}
