//! A fast word-level hasher for bitset keys.
//!
//! Bipartition keys are short sequences of `u64` words with near-random
//! content (tree topology bits). SipHash (the std default) is overkill here
//! and dominates BFH construction time; this FxHash-style multiply-rotate
//! hasher is a few instructions per word. HashDoS is not a concern: inputs
//! are the user's own trees, not adversarial network data.

use std::hash::{BuildHasher, Hasher};

/// Multiplicative word hasher.
///
/// Each written word is avalanche-mixed (multiply + xor-shift, murmur3
/// style) before being folded into the running state with another odd
/// multiply. The per-word pre-mix matters for bipartition keys: a plain
/// FxHash recurrence (`(state rotl 5 ^ w) * K`) produces systematic 64-bit
/// collisions between bit patterns shifted by the rotate amount across a
/// word boundary — exactly the structure neighbouring-taxon splits have.
/// Cost is still only two multiplies and two shifts per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct WordHasher {
    state: u64,
}

const PREMIX: u64 = 0x9e37_79b9_7f4a_7c15; // golden-ratio odd constant
const FOLD: u64 = 0xff51_afd7_ed55_8ccd; // murmur3 fmix64 constant

impl WordHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        let mut w = word.wrapping_mul(PREMIX);
        w ^= w >> 32;
        self.state = (self.state ^ w).wrapping_mul(FOLD);
    }
}

impl Hasher for WordHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let s = self.state;
        s ^ (s >> 33)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path: consume 8-byte chunks, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
}

/// `BuildHasher` producing [`WordHasher`]s; plug into `HashMap`/`HashSet`.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildWordHasher;

impl BuildHasher for BuildWordHasher {
    type Hasher = WordHasher;

    #[inline]
    fn build_hasher(&self) -> WordHasher {
        WordHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bits;
    use std::hash::{BuildHasher, Hash};

    fn hash_of(b: &Bits) -> u64 {
        BuildWordHasher.hash_one(b)
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Bits::from_indices(100, [1, 50, 99]);
        let b = Bits::from_indices(100, [1, 50, 99]);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn single_bit_flips_change_hash() {
        // Not a cryptographic guarantee, but with 64-bit states any
        // single-bit collision among small inputs would indicate a broken
        // mixing function.
        let base = Bits::zeros(128);
        let h0 = hash_of(&base);
        for i in 0..128 {
            let b = Bits::from_indices(128, [i]);
            assert_ne!(hash_of(&b), h0, "flipping bit {i} did not change hash");
        }
    }

    #[test]
    fn usable_in_hash_map() {
        let mut m = crate::bits_map_with_capacity::<u32>(8);
        for i in 0..64usize {
            *m.entry(Bits::from_indices(64, [i])).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 64);
        assert_eq!(m[&Bits::from_indices(64, [5])], 1);
    }

    #[test]
    fn byte_path_matches_word_path_for_whole_words() {
        // Hashing the same 16 bytes through write() must equal two
        // write_u64 calls — Bits hashes via its Box<[u64]> which uses the
        // slice path (len prefix + words), we just sanity check the mixer.
        let mut h1 = WordHasher::default();
        h1.write(&[1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]);
        let mut h2 = WordHasher::default();
        h2.write_u64(1);
        h2.write_u64(2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn distribution_smoke_test() {
        // 10k distinct single/double-bit keys should not collide at all in
        // 64-bit space for this mixer.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut collisions = 0;
        for i in 0..100 {
            for j in 0..100 {
                let b = Bits::from_indices(256, if i == j { vec![i] } else { vec![i, j + 100] });
                if !seen.insert(hash_of(&b)) {
                    collisions += 1;
                }
            }
        }
        // All 10k keys are distinct index sets, so any collision is a true
        // 64-bit hash collision; the mixer must produce none on this grid.
        assert_eq!(collisions, 0, "unexpected hash collisions: {collisions}");
    }

    #[test]
    fn hash_trait_on_bits_consistent_with_eq() {
        let a = Bits::ones(77);
        let mut h1 = WordHasher::default();
        a.hash(&mut h1);
        let mut h2 = WordHasher::default();
        a.clone().hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
