//! Lossless, reversible compression of bit vectors.
//!
//! The BFHRF paper's future-work list (§IX) proposes "a loss less and
//! reversible compression of the bipartitions as keys in the hash to
//! further reduce memory" — reversibility being the property that keeps
//! the hash non-transformative (unlike HashRF's lossy IDs). This module
//! provides that codec.
//!
//! Three encodings are tried and the smallest wins, tagged by the first
//! byte:
//!
//! * **Dense** (`0x00`): the little-endian bytes of the vector with
//!   trailing zero bytes trimmed. Good for balanced splits.
//! * **Sparse** (`0x01`): LEB128 varints of the set-bit gaps. Good for
//!   small clades.
//! * **Sparse complement** (`0x02`): the same, over the *clear* bits.
//!   Crucial for bipartition keys: canonical orientation stores the side
//!   containing taxon 0, which for a small clade *not* containing taxon 0
//!   is the big complement side — encoding the few clear bits instead
//!   makes the key size track `min(|side|, |co-side|)`, the quantity that
//!   is small for most splits of real trees.
//!
//! The bit length is *not* stored: bipartition hashes are homogeneous in
//! `n`, so the container supplies it at decode time.

use crate::Bits;

const DENSE: u8 = 0x00;
const SPARSE: u8 = 0x01;
const SPARSE_COMPLEMENT: u8 = 0x02;

/// Compress to the smallest of the dense / sparse / sparse-complement
/// encodings.
pub fn compress(bits: &Bits) -> Box<[u8]> {
    let mut out = Vec::new();
    compress_words_into(bits.words(), bits.len(), &mut out);
    out.into_boxed_slice()
}

/// [`compress`] from a raw canonical word slice into a reusable buffer —
/// the probe-side variant: no [`Bits`] materialization, no complement
/// allocation, no temporary candidate encodings. The winning encoding is
/// *sized* first (popcount-driven gap walks), then written once, so a
/// steady-state caller allocates nothing. Output bytes are identical to
/// [`compress`] on the same mask.
///
/// `words` must honor the canonical padding invariant (tail bits beyond
/// `nbits` zero), as every mask in this workspace does.
pub fn compress_words_into(words: &[u64], nbits: usize, out: &mut Vec<u8>) {
    out.clear();
    let dense_len = 1 + match last_one_words(words) {
        None => 0,
        Some(i) => i / 8 + 1,
    };
    let sparse_len = 1 + gap_varint_bytes(iter_ones_words(words));
    let co_len = 1 + gap_varint_bytes(iter_zeros_words(words, nbits));
    // Same tie-breaking as the original: complement wins only when strictly
    // smaller than sparse; dense wins ties against the best sparse form.
    let (best_sparse_len, best_sparse_tag) = if co_len < sparse_len {
        (co_len, SPARSE_COMPLEMENT)
    } else {
        (sparse_len, SPARSE)
    };
    if best_sparse_len < dense_len {
        out.reserve(best_sparse_len);
        out.push(best_sparse_tag);
        if best_sparse_tag == SPARSE_COMPLEMENT {
            write_gaps(out, iter_zeros_words(words, nbits));
        } else {
            write_gaps(out, iter_ones_words(words));
        }
    } else {
        out.reserve(dense_len);
        out.push(DENSE);
        'outer: for w in words {
            for b in w.to_le_bytes() {
                if out.len() == dense_len {
                    break 'outer;
                }
                out.push(b);
            }
        }
    }
}

/// Highest set bit of a word slice.
fn last_one_words(words: &[u64]) -> Option<usize> {
    words
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &w)| w != 0)
        .map(|(wi, &w)| wi * 64 + 63 - w.leading_zeros() as usize)
}

/// Set-bit indices of a word slice, ascending.
fn iter_ones_words(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                return None;
            }
            let b = w.trailing_zeros() as usize;
            w &= w - 1;
            Some(wi * 64 + b)
        })
    })
}

/// Clear-bit indices below `nbits`, ascending (padding bits beyond `nbits`
/// read as set in `!w` and are cut off by the bound).
fn iter_zeros_words(words: &[u64], nbits: usize) -> impl Iterator<Item = usize> + '_ {
    words
        .iter()
        .enumerate()
        .flat_map(|(wi, &word)| {
            let mut w = !word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
        .take_while(move |&i| i < nbits)
}

/// Encoded length of `v` as a LEB128 varint.
#[inline]
fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (70 - v.leading_zeros() as usize) / 7
    }
}

/// Total varint bytes the gap encoding of `indices` would occupy.
fn gap_varint_bytes<I: Iterator<Item = usize>>(indices: I) -> usize {
    let mut prev: Option<usize> = None;
    let mut total = 0usize;
    for i in indices {
        let gap = match prev {
            None => i as u64,
            Some(p) => (i - p - 1) as u64,
        };
        total += varint_len(gap);
        prev = Some(i);
    }
    total
}

/// Write the gap encoding of `indices` (no tag byte).
fn write_gaps<I: Iterator<Item = usize>>(out: &mut Vec<u8>, indices: I) {
    let mut prev: Option<usize> = None;
    for i in indices {
        let gap = match prev {
            None => i as u64,
            Some(p) => (i - p - 1) as u64,
        };
        write_varint(out, gap);
        prev = Some(i);
    }
}

/// Decompress an encoding produced by [`compress`] back to a vector of
/// `nbits` bits. Returns `None` on malformed input (wrong tag, index out
/// of range, truncated varint) — the codec never panics on foreign bytes.
pub fn decompress(data: &[u8], nbits: usize) -> Option<Bits> {
    let (&tag, body) = data.split_first()?;
    match tag {
        DENSE => {
            if body.len() > nbits.div_ceil(8) {
                return None;
            }
            let mut out = Bits::zeros(nbits);
            for (i, &byte) in body.iter().enumerate() {
                for bit in 0..8 {
                    if byte >> bit & 1 != 0 {
                        let idx = i * 8 + bit;
                        if idx >= nbits {
                            return None;
                        }
                        out.set(idx);
                    }
                }
            }
            Some(out)
        }
        SPARSE | SPARSE_COMPLEMENT => {
            let mut out = Bits::zeros(nbits);
            let mut pos = 0usize;
            let mut cursor = body;
            let mut first = true;
            while !cursor.is_empty() {
                let (gap, rest) = read_varint(cursor)?;
                cursor = rest;
                // gaps are +1 between successive bits (0 would repeat)
                pos = if first {
                    gap as usize
                } else {
                    pos.checked_add(gap as usize)?.checked_add(1)?
                };
                first = false;
                if pos >= nbits {
                    return None;
                }
                out.set(pos);
            }
            if tag == SPARSE_COMPLEMENT {
                out.complement();
            }
            Some(out)
        }
        _ => None,
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8]) -> Option<(u64, &[u8])> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some((v, &data[i + 1..]));
        }
        shift += 7;
    }
    None // truncated
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bits: &Bits) {
        let enc = compress(bits);
        let dec = decompress(&enc, bits.len()).expect("roundtrip decodes");
        assert_eq!(&dec, bits, "encoding {enc:?}");
    }

    #[test]
    fn roundtrips_basic_shapes() {
        roundtrip(&Bits::zeros(100));
        roundtrip(&Bits::ones(100));
        roundtrip(&Bits::from_indices(100, [0]));
        roundtrip(&Bits::from_indices(100, [99]));
        roundtrip(&Bits::from_indices(100, [0, 99]));
        roundtrip(&Bits::from_indices(1000, [0, 1, 2, 500, 998, 999]));
        roundtrip(&Bits::zeros(0));
    }

    #[test]
    fn sparse_wins_for_small_clades() {
        // one cherry in a 1000-taxon namespace: 2 bits set
        let b = Bits::from_indices(1000, [3, 700]);
        let enc = compress(&b);
        assert_eq!(enc[0], SPARSE);
        assert!(enc.len() <= 4, "two varints expected, got {}", enc.len());
        // raw storage would be 16 words = 128 bytes
        assert!(enc.len() * 16 < 1000 / 8);
    }

    #[test]
    fn dense_wins_for_balanced_splits() {
        let b = Bits::from_indices(128, 0..64);
        let enc = compress(&b);
        assert_eq!(enc[0], DENSE);
        assert_eq!(enc.len(), 1 + 8, "64 low bits = 8 payload bytes");
    }

    #[test]
    fn trailing_zeros_are_trimmed() {
        let b = Bits::from_indices(1024, [2]);
        let enc = compress(&b);
        assert!(enc.len() <= 3, "got {} bytes", enc.len());
    }

    #[test]
    fn malformed_inputs_decode_to_none() {
        assert!(decompress(&[], 10).is_none(), "empty");
        assert!(decompress(&[0x07], 10).is_none(), "unknown tag");
        assert!(
            decompress(&[SPARSE, 0x80], 10).is_none(),
            "truncated varint"
        );
        assert!(
            decompress(&[SPARSE, 0x0f], 10).is_none(),
            "index out of range"
        );
        assert!(
            decompress(&[DENSE, 0xff, 0xff], 10).is_none(),
            "dense payload exceeds nbits"
        );
    }

    #[test]
    fn words_encoder_is_byte_identical_to_owned_encoder() {
        let cases = [
            Bits::zeros(0),
            Bits::zeros(100),
            Bits::ones(100),
            Bits::from_indices(63, [0, 31, 62]),
            Bits::from_indices(64, [63]),
            Bits::from_indices(65, [64]),
            Bits::from_indices(65, [0, 63, 64]),
            Bits::from_indices(128, [0, 127]),
            Bits::from_indices(128, 0..64),
            Bits::from_indices(1000, [3, 700]),
            Bits::from_indices(1000, 2..998),
        ];
        let mut buf = Vec::new();
        for b in &cases {
            compress_words_into(b.words(), b.len(), &mut buf);
            assert_eq!(buf.as_slice(), &*compress(b), "width {} mask {b}", b.len());
            assert_eq!(decompress(&buf, b.len()).as_ref(), Some(b));
        }
    }

    #[test]
    fn varint_len_matches_written_bytes() {
        for v in [0u64, 1, 127, 128, 16383, 16384, 1 << 62, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len(), "v={v}");
        }
    }

    #[test]
    fn varint_edge_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, rest) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn distinct_vectors_have_distinct_encodings() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..64 {
            for j in 0..64 {
                let b = Bits::from_indices(64, if i == j { vec![i] } else { vec![i, j] });
                seen.insert(compress(&b).to_vec());
            }
        }
        // 64 singletons + C(64,2) pairs
        assert_eq!(
            seen.len(),
            64 + 64 * 63 / 2,
            "compression must be injective"
        );
    }
}
