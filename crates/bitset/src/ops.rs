//! Set algebra on [`Bits`].
//!
//! All binary operations require equal lengths: bipartitions only compare
//! within one taxon namespace. In-place variants avoid allocation in hot
//! loops (bipartition extraction unions child sets once per internal node).

use crate::Bits;

impl Bits {
    #[inline]
    fn check_len(&self, other: &Bits, op: &str) {
        assert_eq!(
            self.len(),
            other.len(),
            "length mismatch in {op}: {} vs {}",
            self.len(),
            other.len()
        );
    }

    /// `self |= other`.
    #[inline]
    pub fn union_with(&mut self, other: &Bits) {
        self.check_len(other, "union");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= *b;
        }
    }

    /// `self &= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &Bits) {
        self.check_len(other, "intersection");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= *b;
        }
    }

    /// `self &= !other` (set difference).
    #[inline]
    pub fn difference_with(&mut self, other: &Bits) {
        self.check_len(other, "difference");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !*b;
        }
    }

    /// `self ^= other`.
    #[inline]
    pub fn symmetric_difference_with(&mut self, other: &Bits) {
        self.check_len(other, "symmetric difference");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a ^= *b;
        }
    }

    /// Flip every bit (within `len`), preserving the padding invariant.
    #[inline]
    pub fn complement(&mut self) {
        for w in self.words_mut() {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// A new vector equal to `self | other`.
    pub fn union(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// A new vector equal to `self & other`.
    pub fn intersection(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// A new vector equal to `self & !other`.
    pub fn difference(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// A new vector equal to `self ^ other`.
    pub fn symmetric_difference(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.symmetric_difference_with(other);
        out
    }

    /// A new vector with every bit flipped.
    pub fn complemented(&self) -> Bits {
        let mut out = self.clone();
        out.complement();
        out
    }

    /// Number of bits set in `self & other`, without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &Bits) -> u32 {
        self.check_len(other, "intersection_count");
        self.words()
            .iter()
            .zip(other.words())
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Whether `self` and `other` share no set bit.
    #[inline]
    pub fn is_disjoint(&self, other: &Bits) -> bool {
        self.check_len(other, "is_disjoint");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every set bit of `self` is also set in `other`.
    #[inline]
    pub fn is_subset(&self, other: &Bits) -> bool {
        self.check_len(other, "is_subset");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether every set bit of `other` is also set in `self`.
    #[inline]
    pub fn is_superset(&self, other: &Bits) -> bool {
        other.is_subset(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Bits {
        Bits::from_bitstring(s).unwrap()
    }

    #[test]
    fn union_intersection_difference() {
        let a = bits("0011");
        let b = bits("0110");
        assert_eq!(a.union(&b).to_string(), "0111");
        assert_eq!(a.intersection(&b).to_string(), "0010");
        assert_eq!(a.difference(&b).to_string(), "0001");
        assert_eq!(b.difference(&a).to_string(), "0100");
        assert_eq!(a.symmetric_difference(&b).to_string(), "0101");
    }

    #[test]
    fn complement_respects_padding() {
        let a = Bits::from_indices(67, [0, 66]);
        let c = a.complemented();
        assert_eq!(c.count_ones(), 65);
        assert!(!c.get(0) && !c.get(66) && c.get(1) && c.get(65));
        // double complement is identity
        assert_eq!(c.complemented(), a);
        // padding bits stay zero so Eq on raw words is valid
        assert_eq!(c.words()[1] >> 3, 0);
    }

    #[test]
    fn subset_superset_disjoint() {
        let a = bits("0011");
        let all = bits("1111");
        let none = bits("0000");
        assert!(a.is_subset(&all));
        assert!(all.is_superset(&a));
        assert!(none.is_subset(&a));
        assert!(a.is_disjoint(&a.complemented()));
        assert!(!a.is_disjoint(&all));
        assert!(!all.is_subset(&a));
    }

    #[test]
    fn intersection_count_multiword() {
        let a = Bits::from_indices(200, [0, 63, 64, 127, 128, 199]);
        let b = Bits::from_indices(200, [63, 127, 199, 5]);
        assert_eq!(a.intersection_count(&b), 3);
    }

    #[test]
    fn in_place_variants_match_owned() {
        let a = Bits::from_indices(130, [1, 64, 129]);
        let b = Bits::from_indices(130, [1, 65, 129]);
        let mut x = a.clone();
        x.union_with(&b);
        assert_eq!(x, a.union(&b));
        let mut x = a.clone();
        x.intersect_with(&b);
        assert_eq!(x, a.intersection(&b));
        let mut x = a.clone();
        x.difference_with(&b);
        assert_eq!(x, a.difference(&b));
        let mut x = a.clone();
        x.symmetric_difference_with(&b);
        assert_eq!(x, a.symmetric_difference(&b));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = bits("0011").union(&bits("011"));
    }
}
