//! Set algebra on [`Bits`].
//!
//! All binary operations require equal lengths: bipartitions only compare
//! within one taxon namespace. In-place variants avoid allocation in hot
//! loops (bipartition extraction unions child sets once per internal node).

use crate::Bits;

impl Bits {
    #[inline]
    fn check_len(&self, other: &Bits, op: &str) {
        assert_eq!(
            self.len(),
            other.len(),
            "length mismatch in {op}: {} vs {}",
            self.len(),
            other.len()
        );
    }

    /// `self |= other`.
    #[inline]
    pub fn union_with(&mut self, other: &Bits) {
        self.check_len(other, "union");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= *b;
        }
    }

    /// `self &= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &Bits) {
        self.check_len(other, "intersection");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= *b;
        }
    }

    /// `self &= !other` (set difference).
    #[inline]
    pub fn difference_with(&mut self, other: &Bits) {
        self.check_len(other, "difference");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !*b;
        }
    }

    /// `self ^= other`.
    #[inline]
    pub fn symmetric_difference_with(&mut self, other: &Bits) {
        self.check_len(other, "symmetric difference");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a ^= *b;
        }
    }

    /// Flip every bit (within `len`), preserving the padding invariant.
    #[inline]
    pub fn complement(&mut self) {
        for w in self.words_mut() {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// A new vector equal to `self | other`.
    pub fn union(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// A new vector equal to `self & other`.
    pub fn intersection(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// A new vector equal to `self & !other`.
    pub fn difference(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// A new vector equal to `self ^ other`.
    pub fn symmetric_difference(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.symmetric_difference_with(other);
        out
    }

    /// A new vector with every bit flipped.
    pub fn complemented(&self) -> Bits {
        let mut out = self.clone();
        out.complement();
        out
    }

    /// Number of bits set in `self & other`, without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &Bits) -> u32 {
        self.check_len(other, "intersection_count");
        self.words()
            .iter()
            .zip(other.words())
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Whether `self` and `other` share no set bit.
    #[inline]
    pub fn is_disjoint(&self, other: &Bits) -> bool {
        self.check_len(other, "is_disjoint");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every set bit of `self` is also set in `other`.
    #[inline]
    pub fn is_subset(&self, other: &Bits) -> bool {
        self.check_len(other, "is_subset");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether every set bit of `other` is also set in `self`.
    #[inline]
    pub fn is_superset(&self, other: &Bits) -> bool {
        other.is_subset(self)
    }
}

/// Word-striped chunk width for the free-standing slice kernels below: four
/// `u64` lanes per step, which LLVM lowers to 256-bit (or paired 128-bit)
/// vector ops on every mainstream target.
const STRIPE: usize = 4;

/// `dst |= src`, word-striped. The vectorized core of bottom-up subtree
/// mask accumulation: child masks OR into the parent's arena row four
/// words per step with no per-word loop-carried branch.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn union_words(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "union_words: length mismatch");
    let (d4, dr) = dst.split_at_mut(src.len() - src.len() % STRIPE);
    let (s4, sr) = src.split_at(d4.len());
    for (d, s) in d4.chunks_exact_mut(STRIPE).zip(s4.chunks_exact(STRIPE)) {
        d[0] |= s[0];
        d[1] |= s[1];
        d[2] |= s[2];
        d[3] |= s[3];
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d |= *s;
    }
}

/// Total popcount of a word slice, word-striped with four independent
/// accumulators so the `popcnt` chain never serializes on one register.
#[inline]
pub fn popcount_words(words: &[u64]) -> u32 {
    let mut acc = [0u32; STRIPE];
    let chunks = words.chunks_exact(STRIPE);
    let rem = chunks.remainder();
    for c in chunks {
        acc[0] += c[0].count_ones();
        acc[1] += c[1].count_ones();
        acc[2] += c[2].count_ones();
        acc[3] += c[3].count_ones();
    }
    acc[0] + acc[1] + acc[2] + acc[3] + rem.iter().map(|w| w.count_ones()).sum::<u32>()
}

/// Canonical-orientation kernel: `out[w] = mask[w] ^ (leafset[w] & flip)`,
/// word-striped and branch-free.
///
/// With `flip == 0` this copies `mask`; with `flip == u64::MAX` it writes
/// the complement of `mask` inside `leafset` (valid because a subtree mask
/// is always a subset of its tree's leafset, so `leafset & !mask ==
/// leafset ^ mask`). Extraction derives `flip` from the anchor-bit test, so
/// a ~50/50-unpredictable orientation branch becomes a data dependency.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn orient_words(out: &mut [u64], leafset: &[u64], mask: &[u64], flip: u64) {
    assert_eq!(out.len(), mask.len(), "orient_words: length mismatch");
    assert_eq!(out.len(), leafset.len(), "orient_words: length mismatch");
    let n4 = out.len() - out.len() % STRIPE;
    let (o4, or) = out.split_at_mut(n4);
    for ((o, l), m) in o4
        .chunks_exact_mut(STRIPE)
        .zip(leafset.chunks_exact(STRIPE))
        .zip(mask.chunks_exact(STRIPE))
    {
        o[0] = m[0] ^ (l[0] & flip);
        o[1] = m[1] ^ (l[1] & flip);
        o[2] = m[2] ^ (l[2] & flip);
        o[3] = m[3] ^ (l[3] & flip);
    }
    for ((o, l), m) in or.iter_mut().zip(&leafset[n4..]).zip(&mask[n4..]) {
        *o = *m ^ (*l & flip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Bits {
        Bits::from_bitstring(s).unwrap()
    }

    #[test]
    fn union_intersection_difference() {
        let a = bits("0011");
        let b = bits("0110");
        assert_eq!(a.union(&b).to_string(), "0111");
        assert_eq!(a.intersection(&b).to_string(), "0010");
        assert_eq!(a.difference(&b).to_string(), "0001");
        assert_eq!(b.difference(&a).to_string(), "0100");
        assert_eq!(a.symmetric_difference(&b).to_string(), "0101");
    }

    #[test]
    fn complement_respects_padding() {
        let a = Bits::from_indices(67, [0, 66]);
        let c = a.complemented();
        assert_eq!(c.count_ones(), 65);
        assert!(!c.get(0) && !c.get(66) && c.get(1) && c.get(65));
        // double complement is identity
        assert_eq!(c.complemented(), a);
        // padding bits stay zero so Eq on raw words is valid
        assert_eq!(c.words()[1] >> 3, 0);
    }

    #[test]
    fn subset_superset_disjoint() {
        let a = bits("0011");
        let all = bits("1111");
        let none = bits("0000");
        assert!(a.is_subset(&all));
        assert!(all.is_superset(&a));
        assert!(none.is_subset(&a));
        assert!(a.is_disjoint(&a.complemented()));
        assert!(!a.is_disjoint(&all));
        assert!(!all.is_subset(&a));
    }

    #[test]
    fn intersection_count_multiword() {
        let a = Bits::from_indices(200, [0, 63, 64, 127, 128, 199]);
        let b = Bits::from_indices(200, [63, 127, 199, 5]);
        assert_eq!(a.intersection_count(&b), 3);
    }

    #[test]
    fn in_place_variants_match_owned() {
        let a = Bits::from_indices(130, [1, 64, 129]);
        let b = Bits::from_indices(130, [1, 65, 129]);
        let mut x = a.clone();
        x.union_with(&b);
        assert_eq!(x, a.union(&b));
        let mut x = a.clone();
        x.intersect_with(&b);
        assert_eq!(x, a.intersection(&b));
        let mut x = a.clone();
        x.difference_with(&b);
        assert_eq!(x, a.difference(&b));
        let mut x = a.clone();
        x.symmetric_difference_with(&b);
        assert_eq!(x, a.symmetric_difference(&b));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = bits("0011").union(&bits("011"));
    }

    /// Deterministic word stream for the striped-kernel tests.
    fn rand_words(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s.wrapping_mul(0x2545_f491_4f6c_dd1d)
            })
            .collect()
    }

    #[test]
    fn striped_kernels_match_scalar_at_every_stride() {
        // Lengths straddling the stripe width (0..=9 covers empty, partial,
        // exact, and exact-plus-remainder chunking) and word counts used by
        // boundary taxon widths (words_for of 15..129 is 1..3).
        for len in 0..10usize {
            for seed in 1..20u64 {
                let a = rand_words(seed, len);
                let b = rand_words(seed ^ 0xabcd, len);
                let mut dst = a.clone();
                union_words(&mut dst, &b);
                let expect: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
                assert_eq!(dst, expect, "union len {len} seed {seed}");

                assert_eq!(
                    popcount_words(&a),
                    a.iter().map(|w| w.count_ones()).sum::<u32>(),
                    "popcount len {len} seed {seed}"
                );

                let leafset: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
                let mut out = vec![0u64; len];
                orient_words(&mut out, &leafset, &a, 0);
                assert_eq!(out, a, "flip=0 must copy the mask");
                orient_words(&mut out, &leafset, &a, u64::MAX);
                let flipped: Vec<u64> = leafset.iter().zip(&a).map(|(l, m)| l ^ m).collect();
                assert_eq!(out, flipped, "flip=MAX must complement inside the leafset");
            }
        }
    }

    #[test]
    #[should_panic(expected = "union_words: length mismatch")]
    fn union_words_length_mismatch_panics() {
        union_words(&mut [0u64; 3], &[0u64; 2]);
    }
}
