//! Compact bitmask vectors for phylogenetic bipartition encodings.
//!
//! The BFHRF paper encodes a bipartition of a tree over `n` taxa as a bit
//! vector of length `n`: taxa are assigned bit positions, and the bit value
//! says which side of the split a taxon falls on. This crate provides the
//! underlying fixed-length bitset type, [`Bits`], together with the set
//! algebra the Robinson-Foulds computations need (union, intersection,
//! symmetric difference, masked complement, popcount), a deterministic
//! lexicographic ordering, and a fast word-level hasher ([`WordHasher`])
//! suitable for using bipartitions as `HashMap` keys — the "collision-free
//! hash" property of the paper comes from hashing the *full* bit vector
//! rather than a compressed ID.
//!
//! The crate is dependency-free and deliberately small: it is the innermost
//! substrate of the workspace and everything else builds on it.
//!
//! # Example
//!
//! ```
//! use phylo_bitset::Bits;
//!
//! // The paper's example: tree ((A,B),(C,D)) with taxa A..D assigned
//! // bits 0..3. The internal edge splits {A,B} | {C,D}.
//! let ab = Bits::from_indices(4, [0, 1]);
//! assert_eq!(ab.to_string(), "0011"); // taxon A is the rightmost bit
//! assert_eq!(ab.count_ones(), 2);
//! let cd = ab.complemented();
//! assert_eq!(cd.to_string(), "1100");
//! assert!(ab.is_disjoint(&cd));
//! ```

mod bits;
pub mod compress;
pub mod group;
mod hasher;
mod iter;
mod ops;
mod splithash;

pub use bits::Bits;
pub use hasher::{BuildWordHasher, WordHasher};
pub use iter::Ones;
pub use ops::{orient_words, popcount_words, union_words};
pub use splithash::{
    ctrl_h2, hash_bucket, hash_tag, map_get_words, map_get_words_mut, set_contains_words, shard_of,
    split_hash128, WordsKey,
};

/// Number of bits per storage word.
pub const WORD_BITS: usize = u64::BITS as usize;

/// Number of `u64` words needed to store `nbits` bits.
#[inline]
pub const fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

/// A `HashMap` keyed by [`Bits`] using the fast word hasher.
pub type BitsMap<V> = std::collections::HashMap<Bits, V, BuildWordHasher>;

/// A `HashSet` of [`Bits`] using the fast word hasher.
pub type BitsSet = std::collections::HashSet<Bits, BuildWordHasher>;

/// Create an empty [`BitsMap`] with the given capacity.
pub fn bits_map_with_capacity<V>(cap: usize) -> BitsMap<V> {
    BitsMap::with_capacity_and_hasher(cap, BuildWordHasher)
}

/// Create an empty [`BitsSet`] with the given capacity.
pub fn bits_set_with_capacity(cap: usize) -> BitsSet {
    BitsSet::with_capacity_and_hasher(cap, BuildWordHasher)
}
