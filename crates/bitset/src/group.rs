//! SIMD group scanning for control-byte probe tables.
//!
//! The frozen BFH query kernel (swisstable-style) keeps one 8-bit control
//! byte per slot: [`CTRL_EMPTY`] for an empty slot, or the 7-bit [`ctrl_h2`]
//! tag of the stored split hash for a full one (high bit clear, so the two
//! can never collide). Probing scans the control lane [`GROUP_SLOTS`] bytes
//! at a time: one vector compare yields a bitmask of candidate slots and a
//! second yields the empty-slot mask that terminates the chain — 16 tags
//! examined per step instead of one.
//!
//! [`GroupScan`] is the scan engine contract. Three implementations:
//!
//! * [`Sse2Scan`] (x86-64): `_mm_cmpeq_epi8` + `_mm_movemask_epi8`; the
//!   empty scan is a single `movemask` of the raw bytes, since only
//!   [`CTRL_EMPTY`] has the high bit set.
//! * [`NeonScan`] (aarch64): `vceqq_u8` with a weighted horizontal add
//!   (`vaddv_u8`) standing in for `movemask`.
//! * [`ScalarScan`] (everywhere): exact SWAR over two little-endian `u64`
//!   loads — `(x & 0x7f…) + 0x7f…` zero-byte detection with no cross-byte
//!   borrow, so candidate and empty masks are bit-identical to the vector
//!   engines' (property-tested below).
//!
//! Engine choice is made once per process by [`Engine::auto`]: the
//! environment variable `BFHRF_FORCE_SCALAR=1` forces the scalar fallback
//! (CI runs the whole workspace this way so the portable path cannot rot),
//! `BFHRF_FORCE_SIMD=1` forces the vector path, and otherwise runtime
//! feature detection picks the best available. Callers that need a specific
//! engine regardless of the process default (benchmark ablations, the
//! scalar-vs-SIMD property tests) pass a [`ProbeMode`] instead.
//!
//! [`ctrl_h2`]: crate::ctrl_h2

use std::sync::OnceLock;

/// Slots per control-byte group: one 128-bit vector compare's worth.
pub const GROUP_SLOTS: usize = 16;

/// Control byte of an empty slot. The only control value with the high bit
/// set — full slots store a 7-bit hash tag — so "any empty in this group?"
/// is a movemask of the raw bytes.
pub const CTRL_EMPTY: u8 = 0x80;

/// A 16-slot control-byte scan engine.
///
/// `group` must hold at least [`GROUP_SLOTS`] bytes; both scans examine
/// exactly the first 16 and return a bitmask with bit `j` set for slot `j`.
pub trait GroupScan {
    /// Engine name for diagnostics and bench annotation.
    const NAME: &'static str;

    /// Bitmask of slots whose control byte equals `byte`.
    fn match_byte(group: &[u8], byte: u8) -> u32;

    /// Bitmask of empty slots ([`CTRL_EMPTY`] control bytes).
    fn match_empty(group: &[u8]) -> u32;
}

/// Portable scalar engine: exact SWAR byte matching over two `u64` lanes.
pub struct ScalarScan;

const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
const HI1: u64 = 0x8080_8080_8080_8080;

/// High bit set in every byte of `x` that is zero; exact (the per-byte
/// `& 0x7f` add never carries across byte boundaries, unlike the classic
/// borrow-propagating `x - 0x01…` trick).
#[inline(always)]
fn zero_bytes(x: u64) -> u64 {
    let y = (x & LO7).wrapping_add(LO7);
    !(y | x | LO7)
}

/// Collapse per-byte high bits into an 8-bit mask (bit `j` = byte `j`).
#[inline(always)]
fn movemask8(high_bits: u64) -> u32 {
    (((high_bits >> 7) & 0x0101_0101_0101_0101).wrapping_mul(0x0102_0408_1020_4080) >> 56) as u32
}

#[inline(always)]
fn load_halves(group: &[u8]) -> (u64, u64) {
    let lo = u64::from_le_bytes(group[0..8].try_into().unwrap());
    let hi = u64::from_le_bytes(group[8..16].try_into().unwrap());
    (lo, hi)
}

impl GroupScan for ScalarScan {
    const NAME: &'static str = "scalar";

    #[inline(always)]
    fn match_byte(group: &[u8], byte: u8) -> u32 {
        let (lo, hi) = load_halves(group);
        let splat = u64::from(byte).wrapping_mul(0x0101_0101_0101_0101);
        movemask8(zero_bytes(lo ^ splat)) | (movemask8(zero_bytes(hi ^ splat)) << 8)
    }

    #[inline(always)]
    fn match_empty(group: &[u8]) -> u32 {
        let (lo, hi) = load_halves(group);
        movemask8(lo & HI1) | (movemask8(hi & HI1) << 8)
    }
}

/// SSE2 engine: one `cmpeq` + `movemask` per scan.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
pub struct Sse2Scan;

#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
impl GroupScan for Sse2Scan {
    const NAME: &'static str = "sse2";

    #[inline(always)]
    fn match_byte(group: &[u8], byte: u8) -> u32 {
        use std::arch::x86_64::*;
        debug_assert!(group.len() >= GROUP_SLOTS);
        // SAFETY: SSE2 is statically enabled (cfg above) and `group` holds
        // at least 16 readable bytes; `loadu` has no alignment requirement.
        unsafe {
            let g = _mm_loadu_si128(group.as_ptr() as *const __m128i);
            let eq = _mm_cmpeq_epi8(g, _mm_set1_epi8(byte as i8));
            _mm_movemask_epi8(eq) as u32
        }
    }

    #[inline(always)]
    fn match_empty(group: &[u8]) -> u32 {
        use std::arch::x86_64::*;
        debug_assert!(group.len() >= GROUP_SLOTS);
        // SAFETY: as above. Empty is the only control value with the high
        // bit set, so the raw-byte movemask is exactly the empty mask.
        unsafe {
            let g = _mm_loadu_si128(group.as_ptr() as *const __m128i);
            _mm_movemask_epi8(g) as u32
        }
    }
}

/// NEON engine: `vceqq_u8` with a weighted `vaddv_u8` movemask.
#[cfg(target_arch = "aarch64")]
pub struct NeonScan;

#[cfg(target_arch = "aarch64")]
#[inline(always)]
fn neon_movemask(v: std::arch::aarch64::uint8x16_t) -> u32 {
    use std::arch::aarch64::*;
    const POWERS: [u8; 16] = [1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128];
    // SAFETY: NEON is baseline on aarch64; POWERS is 16 readable bytes.
    unsafe {
        let weighted = vandq_u8(v, vld1q_u8(POWERS.as_ptr()));
        let lo = u32::from(vaddv_u8(vget_low_u8(weighted)));
        let hi = u32::from(vaddv_u8(vget_high_u8(weighted)));
        lo | (hi << 8)
    }
}

#[cfg(target_arch = "aarch64")]
impl GroupScan for NeonScan {
    const NAME: &'static str = "neon";

    #[inline(always)]
    fn match_byte(group: &[u8], byte: u8) -> u32 {
        use std::arch::aarch64::*;
        debug_assert!(group.len() >= GROUP_SLOTS);
        // SAFETY: NEON is baseline on aarch64; `group` holds ≥ 16 bytes.
        unsafe {
            let g = vld1q_u8(group.as_ptr());
            neon_movemask(vceqq_u8(g, vdupq_n_u8(byte)))
        }
    }

    #[inline(always)]
    fn match_empty(group: &[u8]) -> u32 {
        use std::arch::aarch64::*;
        debug_assert!(group.len() >= GROUP_SLOTS);
        // SAFETY: as above. 0x80 is the only high-bit control value.
        unsafe {
            let g = vld1q_u8(group.as_ptr());
            neon_movemask(vcgeq_u8(g, vdupq_n_u8(CTRL_EMPTY)))
        }
    }
}

/// The best vector engine this build knows for the target architecture;
/// aliases [`ScalarScan`] where none exists, so dispatch sites stay
/// `cfg`-free.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
pub type SimdScan = Sse2Scan;
#[cfg(target_arch = "aarch64")]
pub type SimdScan = NeonScan;
#[cfg(not(any(
    all(target_arch = "x86_64", target_feature = "sse2"),
    target_arch = "aarch64"
)))]
pub type SimdScan = ScalarScan;

/// Whether [`SimdScan`] is a real vector engine on this host (compiled in
/// *and* confirmed by runtime feature detection).
#[inline]
pub fn simd_available() -> bool {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    {
        std::arch::is_x86_feature_detected!("sse2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true // NEON is architecturally baseline on aarch64
    }
    #[cfg(not(any(
        all(target_arch = "x86_64", target_feature = "sse2"),
        target_arch = "aarch64"
    )))]
    {
        false
    }
}

/// The probe engine resolved for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Portable SWAR scan.
    Scalar,
    /// Vector scan ([`SimdScan`]).
    Simd,
}

impl Engine {
    /// The process-wide engine, resolved once: `BFHRF_FORCE_SCALAR=1`
    /// forces [`Engine::Scalar`], `BFHRF_FORCE_SIMD=1` forces
    /// [`Engine::Simd`], otherwise runtime detection picks Simd when
    /// [`simd_available`].
    pub fn auto() -> Engine {
        static ENGINE: OnceLock<Engine> = OnceLock::new();
        *ENGINE.get_or_init(Engine::detect)
    }

    fn detect() -> Engine {
        let flag = |name: &str| std::env::var(name).is_ok_and(|v| v == "1" || v == "true");
        if flag("BFHRF_FORCE_SCALAR") {
            Engine::Scalar
        } else if flag("BFHRF_FORCE_SIMD") || simd_available() {
            Engine::Simd
        } else {
            Engine::Scalar
        }
    }

    /// The scan-engine name this engine resolves to ("sse2", "neon", or
    /// "scalar").
    pub fn name(self) -> &'static str {
        match self {
            Engine::Scalar => ScalarScan::NAME,
            Engine::Simd => SimdScan::NAME,
        }
    }
}

/// Caller-selected probe path for benchmark ablations and property tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// Use the process-wide [`Engine::auto`] choice.
    Auto,
    /// Force the portable scalar scan.
    Scalar,
    /// Force the vector scan (falls back to scalar code via the
    /// [`SimdScan`] alias on targets without one).
    Simd,
}

impl ProbeMode {
    /// Resolve to a concrete engine.
    #[inline]
    pub fn engine(self) -> Engine {
        match self {
            ProbeMode::Auto => Engine::auto(),
            ProbeMode::Scalar => Engine::Scalar,
            ProbeMode::Simd => Engine::Simd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random byte stream (xorshift64*).
    fn rand_bytes(seed: u64, n: usize) -> Vec<u8> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8
            })
            .collect()
    }

    fn reference_match(group: &[u8], byte: u8) -> u32 {
        group[..GROUP_SLOTS]
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == byte)
            .map(|(j, _)| 1u32 << j)
            .sum()
    }

    #[test]
    fn scalar_matches_reference_on_random_groups() {
        for seed in 1..200u64 {
            let g = rand_bytes(seed, GROUP_SLOTS);
            for probe in [0u8, 1, 0x7f, CTRL_EMPTY, 0xff, g[0], g[15], g[7]] {
                assert_eq!(
                    ScalarScan::match_byte(&g, probe),
                    reference_match(&g, probe),
                    "seed {seed} probe {probe:#x} group {g:x?}"
                );
            }
            assert_eq!(
                ScalarScan::match_empty(&g),
                reference_match(&g, CTRL_EMPTY)
                    | g.iter()
                        .enumerate()
                        .filter(|(_, &b)| b > CTRL_EMPTY)
                        .map(|(j, _)| 1u32 << j)
                        .sum::<u32>()
                        & 0xffff,
                "empty scan must flag exactly the high-bit bytes"
            );
        }
    }

    #[test]
    fn simd_and_scalar_scans_are_bit_identical() {
        // On control lanes only CTRL_EMPTY carries the high bit, so the two
        // engines agree on both scans; assert over valid control content.
        for seed in 1..500u64 {
            let mut g = rand_bytes(seed, GROUP_SLOTS);
            for b in g.iter_mut() {
                if *b & 0x80 != 0 {
                    *b = CTRL_EMPTY; // clamp to a valid control byte
                }
            }
            for probe in [0u8, 0x3c, 0x7f, g[3] & 0x7f] {
                assert_eq!(
                    ScalarScan::match_byte(&g, probe),
                    SimdScan::match_byte(&g, probe),
                    "seed {seed} probe {probe:#x}"
                );
            }
            assert_eq!(
                ScalarScan::match_empty(&g),
                SimdScan::match_empty(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn match_masks_are_sixteen_bits() {
        let g = [CTRL_EMPTY; GROUP_SLOTS];
        assert_eq!(ScalarScan::match_empty(&g), 0xffff);
        assert_eq!(ScalarScan::match_byte(&g, CTRL_EMPTY), 0xffff);
        assert_eq!(SimdScan::match_empty(&g), 0xffff);
        let g = [0x11u8; GROUP_SLOTS];
        assert_eq!(ScalarScan::match_empty(&g), 0);
        assert_eq!(ScalarScan::match_byte(&g, 0x11), 0xffff);
        assert_eq!(ScalarScan::match_byte(&g, 0x12), 0);
    }

    #[test]
    fn engine_resolution_is_consistent() {
        let auto = Engine::auto();
        assert_eq!(auto, Engine::auto(), "must be cached");
        assert!(matches!(auto.name(), "scalar" | "sse2" | "neon"));
        assert_eq!(ProbeMode::Scalar.engine(), Engine::Scalar);
        assert_eq!(ProbeMode::Simd.engine(), Engine::Simd);
        assert_eq!(ProbeMode::Auto.engine(), auto);
        if !simd_available() {
            assert_eq!(Engine::Simd.name(), "scalar", "alias must fall back");
        }
    }
}
