//! Stable canonical split hashing and shard routing.
//!
//! The sharded BFH build partitions canonical bipartition masks across `k`
//! independent maps. The router must be a pure function of the mask words —
//! stable across runs, platforms, and thread counts — so that (a) the same
//! split always lands in the same shard and (b) shard contents are
//! reproducible for tests. [`split_hash128`] provides that function: two
//! independent 64-bit multiply–xorshift lanes over the words, concatenated.
//! It is deliberately *not* tied to [`crate::WordHasher`] (the in-map
//! hasher), so either can evolve without invalidating the other.
//!
//! [`shard_of`] maps a hash to a shard index with Lemire's fastrange on the
//! high lane — no modulo, and an even spread for any shard count.

use crate::{BitsMap, BitsSet};
use std::borrow::Borrow;
use std::hash::{Hash, Hasher};

const LANE1_SEED: u64 = 0x243f_6a88_85a3_08d3; // pi fractional bits
const LANE2_SEED: u64 = 0x1319_8a2e_0370_7344;
const MULT1: u64 = 0xff51_afd7_ed55_8ccd; // MurmurHash3 finalizer constants
const MULT2: u64 = 0xc4ce_b9fe_1a85_ec53;

#[inline]
fn mix(mut h: u64, word: u64, mult: u64) -> u64 {
    h ^= word;
    h = h.wrapping_mul(mult);
    h ^ (h >> 33)
}

/// Stable 128-bit hash of a canonical bipartition mask.
///
/// Input is the raw word slice of a [`crate::Bits`] honoring the canonical
/// padding invariant (tail bits zero). The result depends only on the word
/// values, never on addresses, hasher state, or platform.
#[inline]
pub fn split_hash128(words: &[u64]) -> u128 {
    let mut h1 = LANE1_SEED ^ (words.len() as u64).wrapping_mul(MULT1);
    let mut h2 = LANE2_SEED ^ (words.len() as u64).wrapping_mul(MULT2);
    for &w in words {
        h1 = mix(h1, w, MULT1);
        h2 = mix(h2, w.rotate_left(32), MULT2);
    }
    // Final avalanche so short masks still fill both lanes.
    h1 = mix(h1, h2, MULT2);
    h2 = mix(h2, h1, MULT1);
    ((h1 as u128) << 64) | h2 as u128
}

/// Route a split hash to one of `shards` buckets (fastrange on the high
/// lane). `shards` must be non-zero.
#[inline]
pub fn shard_of(hash: u128, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard_of: zero shards");
    (((hash_bucket(hash) as u128) * (shards as u128)) >> 64) as usize
}

/// The bucket-selection lane of a split hash: the high 64 bits — the same
/// lane [`shard_of`] routes on, so an open-addressing table indexed by this
/// lane stays balanced whether or not the hash was sharded first.
#[inline]
pub fn hash_bucket(hash: u128) -> u64 {
    (hash >> 64) as u64
}

/// The tag lane of a split hash: the low 64 bits, independent of
/// [`hash_bucket`] by construction (the two lanes mix with different
/// multipliers). Frozen probe tables store this as the per-slot tag so a
/// probe can reject non-matching slots without touching the key pool.
#[inline]
pub fn hash_tag(hash: u128) -> u64 {
    hash as u64
}

/// The 7-bit control-byte tag (`h2`) of a split hash: the top bits of the
/// bucket lane, which an open-addressing table never consumes for slot
/// selection until it exceeds 2^57 slots. The high bit is always clear, so
/// `h2` can never equal [`crate::group::CTRL_EMPTY`] — a group scan for
/// `h2` only ever reports full slots.
#[inline]
pub fn ctrl_h2(hash: u128) -> u8 {
    (hash_bucket(hash) >> 57) as u8
}

/// Borrowed view of a mask's words, usable as a lookup key in a
/// [`BitsMap`]/[`BitsSet`] without constructing a [`crate::Bits`].
///
/// `Hash` and `Eq` consider only the words — identical to how
/// [`crate::Bits`] hashes (words only) and compares among keys of a single
/// taxon namespace (equal lengths, so `Eq` reduces to word equality). Do
/// not mix bit lengths inside one map when probing through this key; every
/// map in this workspace is keyed by one namespace, which guarantees that.
#[repr(transparent)]
pub struct WordsKey([u64]);

impl WordsKey {
    /// Wrap a word slice.
    #[inline]
    pub fn new(words: &[u64]) -> &WordsKey {
        // SAFETY: `WordsKey` is `#[repr(transparent)]` over `[u64]`, so the
        // pointer cast preserves layout and provenance (same idiom as
        // `std::path::Path` over `OsStr`).
        unsafe { &*(words as *const [u64] as *const WordsKey) }
    }

    /// The underlying words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.0
    }
}

impl Hash for WordsKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `Bits::hash` exactly: hash the word slice.
        self.0.hash(state);
    }
}

impl PartialEq for WordsKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for WordsKey {}

impl Borrow<WordsKey> for crate::Bits {
    #[inline]
    fn borrow(&self) -> &WordsKey {
        WordsKey::new(self.words())
    }
}

/// Borrowed-key lookup: the value for the mask `words`, if present.
///
/// All keys of `map` must come from one taxon namespace (equal bit length)
/// — see [`WordsKey`].
#[inline]
pub fn map_get_words<'m, V>(map: &'m BitsMap<V>, words: &[u64]) -> Option<&'m V> {
    map.get(WordsKey::new(words))
}

/// Borrowed-key lookup, mutable. Same contract as [`map_get_words`].
#[inline]
pub fn map_get_words_mut<'m, V>(map: &'m mut BitsMap<V>, words: &[u64]) -> Option<&'m mut V> {
    map.get_mut(WordsKey::new(words))
}

/// Borrowed-key membership test on a [`BitsSet`].
#[inline]
pub fn set_contains_words(set: &BitsSet, words: &[u64]) -> bool {
    set.contains(WordsKey::new(words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bits_map_with_capacity, bits_set_with_capacity, Bits};

    #[test]
    fn hash_is_stable_and_word_sensitive() {
        let a = split_hash128(&[0b1011, 0]);
        assert_eq!(a, split_hash128(&[0b1011, 0]), "must be deterministic");
        assert_ne!(a, split_hash128(&[0b1011]), "length must matter");
        assert_ne!(a, split_hash128(&[0b1010, 0]), "words must matter");
        // Regression anchor: the constant below is the contract that the
        // routing is stable across releases (changing it would reshard
        // persisted layouts).
        assert_eq!(split_hash128(&[]), split_hash128(&[]));
    }

    #[test]
    fn shard_of_spreads_and_bounds() {
        for k in [1usize, 2, 3, 7, 8, 64] {
            let mut seen = vec![0usize; k];
            for i in 0..10_000u64 {
                let h = split_hash128(&[i, i ^ 0xdead_beef]);
                let s = shard_of(h, k);
                assert!(s < k);
                seen[s] += 1;
            }
            if k > 1 {
                let min = *seen.iter().min().unwrap();
                let max = *seen.iter().max().unwrap();
                assert!(min * 2 > max, "shard skew too high for k={k}: {seen:?}");
            }
        }
    }

    #[test]
    fn borrowed_probe_matches_owned_probe() {
        let mut map = bits_map_with_capacity::<u32>(8);
        let key = Bits::from_indices(130, [0, 64, 129]);
        map.insert(key.clone(), 7);
        assert_eq!(map_get_words(&map, key.words()), Some(&7));
        let miss = Bits::from_indices(130, [1]);
        assert_eq!(map_get_words(&map, miss.words()), None);
        *map_get_words_mut(&mut map, key.words()).unwrap() += 1;
        assert_eq!(map.get(&key), Some(&8));

        let mut set = bits_set_with_capacity(4);
        set.insert(key.clone());
        assert!(set_contains_words(&set, key.words()));
        assert!(!set_contains_words(&set, miss.words()));
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for i in 0..100u64 {
            assert_eq!(shard_of(split_hash128(&[i]), 1), 0);
        }
    }

    #[test]
    fn lanes_recompose_the_full_hash() {
        for i in 0..64u64 {
            let h = split_hash128(&[1u64 << i, i]);
            assert_eq!(((hash_bucket(h) as u128) << 64) | hash_tag(h) as u128, h);
        }
    }

    #[test]
    fn ctrl_h2_is_seven_bits_and_spread() {
        let mut seen = [0usize; 128];
        for i in 0..10_000u64 {
            let h2 = ctrl_h2(split_hash128(&[i, !i]));
            assert!(h2 < 0x80, "h2 must keep the high bit clear");
            assert_ne!(h2, crate::group::CTRL_EMPTY, "h2 can never read as empty");
            seen[h2 as usize] += 1;
        }
        let populated = seen.iter().filter(|&&c| c > 0).count();
        assert!(
            populated == 128,
            "all 128 h2 values should occur: {populated}"
        );
        // h2 comes from bits the bucket index never uses below 2^57 slots.
        let h = split_hash128(&[42]);
        assert_eq!(ctrl_h2(h), (hash_bucket(h) >> 57) as u8);
    }

    #[test]
    fn word_boundary_widths_hash_and_probe_consistently() {
        // n_bits ∈ {63, 64, 65, 128}: one-word, exactly-one-word,
        // just-into-two-words, exactly-two-words. At each width, borrowed
        // word-slice probes must agree with owned-key probes for masks that
        // exercise the last valid bit and the word seam.
        for n_bits in [63usize, 64, 65, 128] {
            let mut map = bits_map_with_capacity::<u32>(16);
            let masks = [
                Bits::from_indices(n_bits, [0]),
                Bits::from_indices(n_bits, [n_bits - 1]),
                Bits::from_indices(n_bits, [0, n_bits - 1]),
                Bits::from_indices(n_bits, 0..n_bits.min(64)),
                Bits::ones(n_bits),
            ];
            for (v, m) in masks.iter().enumerate() {
                map.insert(m.clone(), v as u32);
            }
            for m in masks.iter() {
                // At width 63 the "low 64 bits" and "all ones" masks
                // coincide; the later insert wins, so expect the value of
                // the last equal mask.
                let expected = masks.iter().rposition(|x| x == m).unwrap() as u32;
                assert_eq!(
                    map_get_words(&map, m.words()),
                    Some(&expected),
                    "width {n_bits}, mask {m}"
                );
                // The 128-bit hash of the same words must be self-consistent
                // and distinct across the mask set (no tag aliasing here).
                assert_eq!(split_hash128(m.words()), split_hash128(m.words()));
            }
            let hashes: Vec<u128> = masks.iter().map(|m| split_hash128(m.words())).collect();
            for i in 0..hashes.len() {
                for j in i + 1..hashes.len() {
                    if masks[i] != masks[j] {
                        assert_ne!(hashes[i], hashes[j], "width {n_bits}: {i} vs {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn adjacent_widths_with_same_words_still_distinguishable_by_caller() {
        // 63- and 64-bit masks with identical word content hash identically
        // (the hash sees words only) — the documented contract is that one
        // map never mixes widths. This pins the contract down.
        let a = Bits::from_indices(63, [5]);
        let b = Bits::from_indices(64, [5]);
        assert_eq!(split_hash128(a.words()), split_hash128(b.words()));
    }
}
