//! The [`Bits`] fixed-length bitset.

use crate::{words_for, WORD_BITS};
use std::fmt;

/// A fixed-length bit vector backed by `u64` words.
///
/// `Bits` is the storage type for bipartition encodings. The length is fixed
/// at construction (the number of taxa, `n`); all binary operations require
/// both operands to have the same length and panic otherwise — mixing
/// bipartitions from different taxon namespaces is a logic error upstream.
///
/// Bits beyond `len` inside the last word are kept zero at all times (the
/// *canonical padding invariant*), so `Eq`/`Hash`/`Ord` can operate on raw
/// words without masking.
#[derive(Clone, PartialEq, Eq)]
pub struct Bits {
    words: Box<[u64]>,
    len: usize,
}

impl std::hash::Hash for Bits {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Words only — `len` is omitted so a borrowed word slice
        // ([`crate::WordsKey`]) hashes identically and can probe maps
        // without materializing a `Bits`. The padding invariant keeps this
        // collision-free within a namespace; across namespaces `Eq` still
        // separates equal-words/different-len values.
        self.words.hash(state);
    }
}

impl Bits {
    /// Create an all-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bits {
            words: vec![0u64; words_for(len)].into_boxed_slice(),
            len,
        }
    }

    /// Create an all-one bit vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut b = Bits {
            words: vec![u64::MAX; words_for(len)].into_boxed_slice(),
            len,
        };
        b.mask_tail();
        b
    }

    /// Create a bit vector of length `len` with exactly the given indices set.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut b = Bits::zeros(len);
        for i in indices {
            b.set(i);
        }
        b
    }

    /// Reconstruct a bit vector of length `len` from raw words, e.g. a mask
    /// produced into a [`crate::WordsKey`]-style scratch arena.
    ///
    /// # Panics
    /// Panics if `words.len()` is not exactly `words_for(len)` or if the
    /// tail padding carries set bits (canonical padding invariant).
    pub fn from_words(len: usize, words: &[u64]) -> Self {
        assert_eq!(
            words.len(),
            words_for(len),
            "from_words: word count does not match len"
        );
        let b = Bits {
            words: words.to_vec().into_boxed_slice(),
            len,
        };
        if !len.is_multiple_of(WORD_BITS) {
            if let Some(&last) = b.words.last() {
                assert_eq!(
                    last & !((1u64 << (len % WORD_BITS)) - 1),
                    0,
                    "from_words: padding bits must be zero"
                );
            }
        }
        b
    }

    /// Parse from a bitstring such as `"0011"`.
    ///
    /// Following the paper's display convention, the *rightmost* character is
    /// bit 0 (taxon A). Returns `None` on characters other than '0'/'1'.
    pub fn from_bitstring(s: &str) -> Option<Self> {
        let mut b = Bits::zeros(s.len());
        for (pos, ch) in s.chars().rev().enumerate() {
            match ch {
                '0' => {}
                '1' => b.set(pos),
                _ => return None,
            }
        }
        Some(b)
    }

    /// The number of bits (taxa) in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words, little-endian (bit `i` lives in word `i / 64`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Set bit `i` to 1.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Set bit `i` to 0.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Get bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 != 0
    }

    /// The number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// The number of clear bits (within `len`).
    #[inline]
    pub fn count_zeros(&self) -> u32 {
        self.len as u32 - self.count_ones()
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Index of the lowest set bit, or `None` if all-zero.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the highest set bit, or `None` if all-zero.
    pub fn last_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Zero the padding bits above `len` in the last word.
    ///
    /// Internal helper maintaining the canonical padding invariant after
    /// whole-word operations such as complement.
    #[inline]
    pub(crate) fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

impl Ord for Bits {
    /// Lexicographic order on `(len, words)`: a deterministic total order used
    /// for canonical sorting of bipartition lists in tests and consensus
    /// output.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.len
            .cmp(&other.len)
            .then_with(|| self.words.cmp(&other.words))
    }
}

impl PartialOrd for Bits {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Bits {
    /// Renders the paper's convention: bit 0 (taxon A) is the **rightmost**
    /// character, matching examples like `B(T) = {0001, 1101, ...}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len).rev() {
            f.write_str(if self.get(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bits::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.is_zero());
        let o = Bits::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert_eq!(o.count_zeros(), 0);
        // padding invariant: third word only has 2 bits set
        assert_eq!(o.words()[2], 0b11);
    }

    #[test]
    fn set_get_clear() {
        let mut b = Bits::zeros(100);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(99);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_ones(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bits::zeros(10).set(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bits::zeros(10).get(10);
    }

    #[test]
    fn from_indices_matches_sets() {
        let b = Bits::from_indices(70, [3, 64, 69]);
        assert!(b.get(3) && b.get(64) && b.get(69));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn first_and_last_one() {
        let b = Bits::from_indices(200, [7, 64, 130]);
        assert_eq!(b.first_one(), Some(7));
        assert_eq!(b.last_one(), Some(130));
        assert_eq!(Bits::zeros(5).first_one(), None);
        assert_eq!(Bits::zeros(5).last_one(), None);
    }

    #[test]
    fn display_matches_paper_convention() {
        // paper: species A (bit 0) printed on the right
        let a = Bits::from_indices(4, [0]);
        assert_eq!(a.to_string(), "0001");
        let abd = Bits::from_indices(4, [0, 1, 3]);
        assert_eq!(abd.to_string(), "1011");
    }

    #[test]
    fn bitstring_roundtrip() {
        for s in ["0001", "1101", "1011", "0111", "0011", "0101"] {
            let b = Bits::from_bitstring(s).unwrap();
            assert_eq!(b.to_string(), s);
        }
        assert!(Bits::from_bitstring("01x1").is_none());
    }

    #[test]
    fn eq_and_hash_consistency() {
        use std::collections::HashSet;
        let a = Bits::from_indices(100, [1, 50, 99]);
        let b = Bits::from_indices(100, [1, 50, 99]);
        let c = Bits::from_indices(100, [1, 50]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn ordering_is_total_and_len_first() {
        let short = Bits::ones(4);
        let long = Bits::zeros(5);
        assert!(short < long, "shorter vectors sort first");
        let a = Bits::from_indices(8, [0]);
        let b = Bits::from_indices(8, [1]);
        assert!(a < b);
    }

    #[test]
    fn empty_vector() {
        let b = Bits::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.to_string(), "");
    }
}
