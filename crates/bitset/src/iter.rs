//! Iteration over set bits.

use crate::{Bits, WORD_BITS};

/// Iterator over the indices of set bits of a [`Bits`], in ascending order.
///
/// Created by [`Bits::iter_ones`]. Uses the classic `w & (w - 1)` lowest-bit
/// clearing loop, so iteration cost is proportional to the popcount, not the
/// vector length.
pub struct Ones<'a> {
    words: &'a [u64],
    current: u64,
    word_index: usize,
}

impl<'a> Iterator for Ones<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.current.count_ones() as usize
            + self.words[self.word_index.min(self.words.len())..]
                .iter()
                .skip(1)
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        (remaining, Some(remaining))
    }
}

impl Bits {
    /// Iterate over indices of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        let words = self.words();
        Ones {
            words,
            current: words.first().copied().unwrap_or(0),
            word_index: 0,
        }
    }

    /// Collect set-bit indices into a `Vec`.
    pub fn to_indices(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_in_order_across_words() {
        let idx = vec![0usize, 1, 63, 64, 65, 127, 128, 190];
        let b = Bits::from_indices(191, idx.clone());
        assert_eq!(b.to_indices(), idx);
    }

    #[test]
    fn empty_and_zero_iterate_nothing() {
        assert_eq!(Bits::zeros(0).to_indices(), Vec::<usize>::new());
        assert_eq!(Bits::zeros(100).to_indices(), Vec::<usize>::new());
    }

    #[test]
    fn full_vector_iterates_all() {
        let b = Bits::ones(70);
        assert_eq!(b.to_indices(), (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn size_hint_is_exact() {
        let b = Bits::from_indices(200, [3, 77, 150]);
        let it = b.iter_ones();
        assert_eq!(it.size_hint(), (3, Some(3)));
        assert_eq!(it.count(), 3);
    }
}
