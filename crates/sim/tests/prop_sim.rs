//! Property tests for the simulators: structural invariants must hold for
//! arbitrary sizes, rates and seeds, not just the unit-test fixtures.

use phylo::BipartitionSet;
use phylo_sim::coalescent::MscSimulator;
use phylo_sim::perturb::{nni_forest, random_collection};
use phylo_sim::species::{kingman_species_tree, node_heights, yule_species_tree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn species_trees_are_ultrametric_binary(
        n in 2usize..80,
        scale in 0.05f64..20.0,
        seed in any::<u64>(),
        yule in any::<bool>(),
    ) {
        let (t, taxa) = if yule {
            yule_species_tree(n, scale, seed)
        } else {
            kingman_species_tree(n, scale, seed)
        };
        prop_assert_eq!(t.validate(&taxa).unwrap(), n);
        prop_assert!(t.is_binary());
        let heights = node_heights(&t);
        for leaf in t.leaves() {
            prop_assert!(heights[leaf.index()].abs() < 1e-9);
        }
        // heights decrease from parent to child
        for node in t.postorder() {
            if let Some(p) = t.parent(node) {
                prop_assert!(
                    heights[p.index()] >= heights[node.index()] - 1e-9,
                    "child above parent"
                );
            }
        }
    }

    #[test]
    fn gene_trees_cover_all_taxa_with_positive_branches(
        n in 4usize..40,
        pop in 0.01f64..10.0,
        seed in any::<u64>(),
    ) {
        let (sp, taxa) = kingman_species_tree(n, 1.0, seed);
        let mut sim = MscSimulator::new(sp, taxa, pop, seed ^ 0xabc);
        for _ in 0..3 {
            let g = sim.gene_tree();
            prop_assert_eq!(g.validate(sim.taxa()).unwrap(), n);
            prop_assert!(g.is_binary());
            for node in g.postorder() {
                if let Some(l) = g.length(node) {
                    prop_assert!(l >= 0.0);
                }
            }
        }
    }

    #[test]
    fn nni_forest_distance_bounded_by_move_count(
        n in 6usize..30,
        moves in 0usize..8,
        seed in any::<u64>(),
    ) {
        let base_coll = random_collection(n, 1, seed);
        let forest = nni_forest(&base_coll.trees[0], &base_coll.taxa, 4, moves, seed ^ 1);
        let b0 = BipartitionSet::from_tree(&base_coll.trees[0], &base_coll.taxa);
        for t in &forest.trees {
            let d = b0.rf_distance(&BipartitionSet::from_tree(t, &forest.taxa));
            // each NNI changes at most one split on each side
            prop_assert!(d <= 2 * moves, "distance {d} after {moves} moves");
            prop_assert_eq!(t.validate(&forest.taxa).unwrap(), n);
        }
    }

    #[test]
    fn random_collections_are_uniform_enough(
        n in 10usize..40,
        seed in any::<u64>(),
    ) {
        // two independent draws over the same namespace almost surely
        // differ once n is nontrivial
        let coll = random_collection(n, 2, seed);
        let a = BipartitionSet::from_tree(&coll.trees[0], &coll.taxa);
        let b = BipartitionSet::from_tree(&coll.trees[1], &coll.taxa);
        prop_assert!(a.rf_distance(&b) > 0);
    }

    #[test]
    fn dropout_respects_floor_and_namespace(
        n in 8usize..30,
        r in 1usize..8,
        dropout in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let coll = random_collection(n, r, seed);
        let floor = 4usize.min(n);
        let out = phylo_sim::dropout::with_dropout(&coll, dropout, floor, seed ^ 9);
        prop_assert_eq!(out.taxa.len(), n, "namespace unchanged");
        for t in &out.trees {
            prop_assert!(t.leaf_count() >= floor);
            prop_assert!(t.validate(&out.taxa).is_ok());
        }
    }
}
