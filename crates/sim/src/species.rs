//! Ultrametric species-tree generators.
//!
//! Both generators label leaves `t0..t{n-1}` in a fresh [`TaxonSet`] and
//! set branch lengths so that every leaf is at height 0 and the root is the
//! highest node — the geometry the multispecies coalescent needs.

use crate::sample_exponential;
use phylo::{NodeId, TaxonId, TaxonSet, Tree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate a Kingman-coalescent species tree on `n` taxa.
///
/// Lineages merge backwards in time with rate `C(k,2)/scale`; larger
/// `scale` stretches internal branches (deeper trees → less gene-tree
/// discordance downstream).
pub fn kingman_species_tree(n: usize, scale: f64, seed: u64) -> (Tree, TaxonSet) {
    assert!(n >= 2, "need at least two taxa");
    assert!(scale > 0.0, "scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let taxa = TaxonSet::with_numbered("t", n);
    // proto-nodes: (children, taxon, height)
    let mut protos: Vec<(Vec<usize>, Option<TaxonId>, f64)> = (0..n)
        .map(|i| (Vec::new(), Some(TaxonId(i as u32)), 0.0))
        .collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut t = 0.0f64;
    while active.len() > 1 {
        let k = active.len();
        let rate = (k * (k - 1)) as f64 / 2.0 / scale;
        t += sample_exponential(&mut rng, rate);
        let i = rng.random_range(0..active.len());
        let a = active.swap_remove(i);
        let j = rng.random_range(0..active.len());
        let b = active.swap_remove(j);
        protos.push((vec![a, b], None, t));
        active.push(protos.len() - 1);
    }
    (materialize(&protos, active[0]), taxa)
}

/// Generate a Yule (pure-birth) species tree on `n` taxa with birth rate
/// `lambda`, made ultrametric by extending every tip to the time of the
/// last split.
pub fn yule_species_tree(n: usize, lambda: f64, seed: u64) -> (Tree, TaxonSet) {
    assert!(n >= 2, "need at least two taxa");
    assert!(lambda > 0.0, "lambda must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let taxa = TaxonSet::with_numbered("t", n);
    // Forward-time construction: nodes store split times; tips split at
    // exponential times with total rate k*lambda.
    struct FwdNode {
        children: Vec<usize>,
        time: f64, // time of this node's split (tips: assigned at the end)
    }
    let mut nodes = vec![FwdNode {
        children: Vec::new(),
        time: 0.0,
    }];
    let mut tips = vec![0usize];
    let mut now = 0.0f64;
    while tips.len() < n {
        let k = tips.len();
        now += sample_exponential(&mut rng, k as f64 * lambda);
        let idx = rng.random_range(0..tips.len());
        let parent = tips.swap_remove(idx);
        nodes[parent].time = now;
        for _ in 0..2 {
            nodes.push(FwdNode {
                children: Vec::new(),
                time: 0.0,
            });
            let c = nodes.len() - 1;
            nodes[parent].children.push(c);
            tips.push(c);
        }
    }
    let total = now; // all tips extend to the last split time
                     // convert forward times to heights (time before present)
    let mut protos: Vec<(Vec<usize>, Option<TaxonId>, f64)> = Vec::with_capacity(nodes.len());
    let mut tip_counter = 0u32;
    for node in &nodes {
        if node.children.is_empty() {
            protos.push((Vec::new(), Some(TaxonId(tip_counter)), 0.0));
            tip_counter += 1;
        } else {
            protos.push((node.children.clone(), None, total - node.time));
        }
    }
    (materialize(&protos, 0), taxa)
}

/// Convert a proto-forest (children lists + heights, leaves at height 0)
/// into a [`Tree`] rooted at `root`, with branch lengths equal to height
/// differences.
pub(crate) fn materialize(protos: &[(Vec<usize>, Option<TaxonId>, f64)], root: usize) -> Tree {
    let mut tree = Tree::new();
    let tree_root = tree.add_root();
    let mut stack: Vec<(usize, NodeId)> = vec![(root, tree_root)];
    while let Some((p, node)) = stack.pop() {
        let (children, taxon, height) = &protos[p];
        tree.set_taxon(node, *taxon);
        for &c in children {
            let child_node = tree.add_child(node);
            let child_height = protos[c].2;
            tree.set_length(child_node, Some(height - child_height));
            stack.push((c, child_node));
        }
    }
    tree
}

/// Height (time before present) of every node, from branch lengths.
/// Leaves of an ultrametric tree are all at (approximately) zero.
pub fn node_heights(tree: &Tree) -> Vec<f64> {
    let mut heights = vec![0.0f64; tree.num_nodes()];
    let Some(root) = tree.root() else {
        return heights;
    };
    // root height = max root distance over leaves
    let mut max_depth = 0.0f64;
    for leaf in tree.leaves() {
        max_depth = max_depth.max(tree.root_distance(leaf));
    }
    for node in tree.preorder() {
        if node == root {
            heights[node.index()] = max_depth;
        } else {
            let parent = tree.parent(node).unwrap();
            heights[node.index()] = heights[parent.index()] - tree.length(node).unwrap_or(0.0);
        }
    }
    heights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kingman_tree_is_valid_binary_ultrametric() {
        let (t, taxa) = kingman_species_tree(20, 1.0, 42);
        assert_eq!(t.validate(&taxa).unwrap(), 20);
        assert!(t.is_binary());
        let heights = node_heights(&t);
        for leaf in t.leaves() {
            assert!(
                heights[leaf.index()].abs() < 1e-9,
                "leaf height {} not ~0",
                heights[leaf.index()]
            );
        }
    }

    #[test]
    fn yule_tree_is_valid_binary_ultrametric() {
        let (t, taxa) = yule_species_tree(25, 1.0, 7);
        assert_eq!(t.validate(&taxa).unwrap(), 25);
        assert!(t.is_binary());
        let heights = node_heights(&t);
        for leaf in t.leaves() {
            assert!(heights[leaf.index()].abs() < 1e-9);
        }
        // every branch length is nonnegative
        for node in t.postorder() {
            if let Some(l) = t.length(node) {
                assert!(l >= 0.0, "negative branch length {l}");
            }
        }
    }

    #[test]
    fn generators_are_deterministic_and_seed_sensitive() {
        let s = |seed| {
            let (t, taxa) = kingman_species_tree(12, 1.0, seed);
            phylo::write_newick(&t, &taxa)
        };
        assert_eq!(s(5), s(5));
        assert_ne!(s(5), s(6));
    }

    #[test]
    fn scale_stretches_depth() {
        let depth = |scale: f64| {
            let (t, _) = kingman_species_tree(30, scale, 11);
            node_heights(&t)[t.root().unwrap().index()]
        };
        // Kingman expected depth ≈ scale * 2(1 - 1/n); 20x scale should
        // dominate sampling noise at a fixed seed.
        assert!(depth(20.0) > depth(1.0));
    }

    #[test]
    fn minimum_size_trees() {
        let (t, taxa) = kingman_species_tree(2, 1.0, 0);
        assert_eq!(t.leaf_count(), 2);
        assert!(t.validate(&taxa).is_ok());
        let (t, taxa) = yule_species_tree(2, 1.0, 0);
        assert_eq!(t.leaf_count(), 2);
        assert!(t.validate(&taxa).is_ok());
    }
}
