//! Taxon dropout: variable-taxa collections.
//!
//! Real gene-tree collections rarely cover every species ("it is not
//! typical of real-world data sets" for taxa to be identical — paper §I);
//! fragmentary sequences drop taxa from individual gene trees. This
//! module post-processes a fixed-taxa collection by deleting each leaf
//! independently with probability `dropout`, keeping at least
//! `min_leaves`, producing the inputs the variable-taxa RF pathway
//! ([`bfhrf`'s `variable_taxa`] in the core crate) is built for.

use phylo::{Tree, TreeCollection};
use phylo_bitset::Bits;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Apply independent leaf dropout to every tree of `coll`.
///
/// Each taxon of each tree is removed with probability `dropout`; if a
/// draw would leave fewer than `min_leaves` leaves, taxa are retained (in
/// random order) until the floor is met. The namespace is shared and
/// unchanged — only tree leaf sets shrink.
///
/// # Panics
/// Panics unless `0.0 <= dropout < 1.0` and `min_leaves >= 1`.
pub fn with_dropout(
    coll: &TreeCollection,
    dropout: f64,
    min_leaves: usize,
    seed: u64,
) -> TreeCollection {
    assert!((0.0..1.0).contains(&dropout), "dropout must be in [0, 1)");
    assert!(min_leaves >= 1, "min_leaves must be positive");
    let n = coll.taxa.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let trees: Vec<Tree> = coll
        .trees
        .iter()
        .map(|tree| {
            let leafset = tree.leafset(n);
            let leaves: Vec<usize> = leafset.iter_ones().collect();
            let floor = min_leaves.min(leaves.len());
            let mut keep = Bits::zeros(n);
            let mut kept = 0usize;
            let mut dropped: Vec<usize> = Vec::new();
            for &taxon in &leaves {
                if rng.random_range(0.0..1.0) >= dropout {
                    keep.set(taxon);
                    kept += 1;
                } else {
                    dropped.push(taxon);
                }
            }
            // backfill to the floor with random dropped taxa
            while kept < floor {
                let i = rng.random_range(0..dropped.len());
                keep.set(dropped.swap_remove(i));
                kept += 1;
            }
            tree.restricted(&keep)
                .expect("floor guarantees at least one leaf")
        })
        .collect();
    TreeCollection {
        taxa: coll.taxa.clone(),
        trees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    fn base() -> TreeCollection {
        crate::generate(&DatasetSpec::new("dropout", 20, 30, 4))
    }

    #[test]
    fn dropout_shrinks_leaf_sets() {
        let coll = base();
        let out = with_dropout(&coll, 0.3, 4, 9);
        assert_eq!(out.len(), 30);
        let mut any_smaller = false;
        for t in &out.trees {
            let k = t.leaf_count();
            assert!(k >= 4);
            assert!(k <= 20);
            if k < 20 {
                any_smaller = true;
            }
            assert!(t.validate(&out.taxa).is_ok());
        }
        assert!(any_smaller, "30% dropout must hit something");
    }

    #[test]
    fn zero_dropout_is_identity_topology() {
        let coll = base();
        let out = with_dropout(&coll, 0.0, 1, 9);
        for (a, b) in coll.trees.iter().zip(&out.trees) {
            assert_eq!(
                phylo::write_newick(a, &coll.taxa),
                phylo::write_newick(b, &out.taxa)
            );
        }
    }

    #[test]
    fn floor_is_respected_under_heavy_dropout() {
        let coll = base();
        let out = with_dropout(&coll, 0.95, 6, 2);
        for t in &out.trees {
            assert!(t.leaf_count() >= 6, "floor violated: {}", t.leaf_count());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let coll = base();
        let a = with_dropout(&coll, 0.4, 4, 77);
        let b = with_dropout(&coll, 0.4, 4, 77);
        for (x, y) in a.trees.iter().zip(&b.trees) {
            assert_eq!(
                phylo::write_newick(x, &a.taxa),
                phylo::write_newick(y, &b.taxa)
            );
        }
    }

    #[test]
    fn feeds_variable_taxa_pipeline() {
        // the whole point: dropout output must flow through restriction-RF
        let coll = base();
        let refs = with_dropout(&coll, 0.15, 10, 5);
        let queries = TreeCollection {
            taxa: coll.taxa.clone(),
            trees: coll.trees[..3].to_vec(),
        };
        // common taxa across all refs and queries can be small but the
        // pipeline must either succeed or give the typed too-few error
        match bfhrf::variable_taxa::common_taxa_rf(&refs, &queries) {
            Ok(out) => {
                assert!(out.taxa.len() >= 4);
                assert_eq!(out.scores.len(), 3);
            }
            Err(bfhrf::CoreError::TaxaMismatch(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
