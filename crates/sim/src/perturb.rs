//! Random-walk tree perturbation.
//!
//! NNI walks from a base topology produce collections whose RF spread is
//! directly controlled by the walk length — handy for tests that need "a
//! collection about this far from a known tree" without the indirection of
//! a coalescent model.

use phylo::{TaxonSet, Tree, TreeCollection};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Apply `moves` random NNI rearrangements to a copy of `base`.
pub fn nni_walk(base: &Tree, moves: usize, rng: &mut StdRng) -> Tree {
    let mut t = base.clone();
    for _ in 0..moves {
        let edges = t.nni_edges();
        if edges.is_empty() {
            break; // trees with < 5 leaves admit no proper NNI here
        }
        let (p, c) = edges[rng.random_range(0..edges.len())];
        let child_idx = rng.random_range(0..t.children(c).len());
        let sib_count = t.children(p).len() - 1;
        let sib_idx = rng.random_range(0..sib_count);
        t.nni(p, c, child_idx, sib_idx)
            .expect("indices chosen within range");
    }
    t
}

/// A collection of `count` trees, each `moves` random NNIs away from
/// `base`, over the shared `taxa`.
pub fn nni_forest(
    base: &Tree,
    taxa: &TaxonSet,
    count: usize,
    moves: usize,
    seed: u64,
) -> TreeCollection {
    let mut rng = StdRng::seed_from_u64(seed);
    let trees = (0..count)
        .map(|_| nni_walk(base, moves, &mut rng))
        .collect();
    TreeCollection {
        taxa: taxa.clone(),
        trees,
    }
}

/// A collection of `count` independent uniform-attachment random binary
/// trees on `n` taxa (`t0..t{n-1}`): maximal discordance, the stress case
/// for hash growth (every tree contributes mostly unique bipartitions).
pub fn random_collection(n: usize, count: usize, seed: u64) -> TreeCollection {
    let taxa = TaxonSet::with_numbered("t", n);
    let mut rng = StdRng::seed_from_u64(seed);
    let trees = (0..count)
        .map(|_| random_binary_tree(n, &mut rng))
        .collect();
    TreeCollection { taxa, trees }
}

/// One uniform-attachment random binary tree on `n` taxa.
pub fn random_binary_tree(n: usize, rng: &mut StdRng) -> Tree {
    assert!(n >= 2);
    let (mut t, root) = Tree::with_root();
    t.add_leaf(root, phylo::TaxonId(0));
    t.add_leaf(root, phylo::TaxonId(1));
    // Track edges incrementally instead of re-collecting per insertion:
    // each insertion replaces one edge with three.
    let mut edges: Vec<(phylo::NodeId, phylo::NodeId)> = t.edges().collect();
    for i in 2..n {
        let k = rng.random_range(0..edges.len());
        let (p, c) = edges.swap_remove(k);
        t.detach_child(p, c);
        let mid = t.add_child(p);
        t.attach_child(mid, c);
        let leaf = t.add_leaf(mid, phylo::TaxonId(i as u32));
        edges.push((p, mid));
        edges.push((mid, c));
        edges.push((mid, leaf));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::BipartitionSet;

    #[test]
    fn nni_walk_distance_grows_with_moves() {
        let coll = random_collection(30, 1, 3);
        let base = &coll.trees[0];
        let mut rng = StdRng::seed_from_u64(5);
        let b0 = BipartitionSet::from_tree(base, &coll.taxa);
        let near = nni_walk(base, 1, &mut rng);
        let far = nni_walk(base, 40, &mut rng);
        let d_near = b0.rf_distance(&BipartitionSet::from_tree(&near, &coll.taxa));
        let d_far = b0.rf_distance(&BipartitionSet::from_tree(&far, &coll.taxa));
        assert_eq!(d_near, 2, "single NNI is RF distance 2");
        assert!(d_far > d_near);
    }

    #[test]
    fn nni_forest_members_are_valid() {
        let coll = random_collection(20, 1, 11);
        let forest = nni_forest(&coll.trees[0], &coll.taxa, 15, 5, 9);
        assert_eq!(forest.len(), 15);
        for t in &forest.trees {
            assert_eq!(t.validate(&forest.taxa).unwrap(), 20);
            assert!(t.is_binary());
        }
    }

    #[test]
    fn random_collection_is_valid_and_distinct() {
        let coll = random_collection(25, 10, 42);
        assert_eq!(coll.len(), 10);
        let mut newicks = std::collections::HashSet::new();
        for t in &coll.trees {
            assert_eq!(t.validate(&coll.taxa).unwrap(), 25);
            assert!(t.is_binary());
            newicks.insert(phylo::write_newick(t, &coll.taxa));
        }
        assert!(newicks.len() > 1, "independent draws should differ");
    }

    #[test]
    fn tiny_trees_do_not_loop_forever() {
        let coll = random_collection(4, 1, 1);
        let mut rng = StdRng::seed_from_u64(2);
        // a 4-leaf tree rooted bifurcating has no eligible NNI edge;
        // the walk must terminate and return a clone
        let t = nni_walk(&coll.trees[0], 10, &mut rng);
        assert_eq!(t.leaf_count(), 4);
    }

    #[test]
    fn incremental_edge_tracking_matches_fresh_enumeration() {
        let mut rng = StdRng::seed_from_u64(17);
        let t = random_binary_tree(40, &mut rng);
        assert_eq!(t.edges().count(), t.num_nodes() - 1);
        assert_eq!(t.leaf_count(), 40);
    }
}
