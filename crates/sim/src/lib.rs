//! Simulated phylogenetic datasets for the BFHRF experiments.
//!
//! The paper evaluates on two real collections (Avian: Jarvis et al. 2014,
//! n=48, r=14446; Insect: Sayyari et al. 2017, n=144, r=149278) and on
//! simulated collections generated with SimPhy following the ASTRAL-II
//! S100 protocol. Neither the real files nor SimPhy are available here, so
//! this crate provides the closest synthetic equivalent:
//!
//! * [`species`] — ultrametric species-tree generators (Yule birth process
//!   and Kingman coalescent);
//! * [`coalescent`] — multispecies-coalescent gene-tree simulation within a
//!   species tree, the same generative model SimPhy implements. Gene trees
//!   share bipartitions with rates governed by branch lengths in coalescent
//!   units, reproducing the "centralized distribution" of splits that the
//!   paper's memory discussion (§VII.C) depends on;
//! * [`perturb`] — random NNI walks from a base tree, for collections with
//!   directly controlled RF spread;
//! * [`datasets`] — named presets matching the paper's Table II shapes.
//!
//! All generators are deterministic given a seed.

pub mod coalescent;
pub mod datasets;
pub mod dropout;
pub mod perturb;
pub mod species;

pub use coalescent::MscSimulator;
pub use datasets::{generate, DatasetSpec};
pub use species::{kingman_species_tree, yule_species_tree};

use rand::rngs::StdRng;
use rand::RngExt;

/// Draw from `Exp(rate)` by inverse CDF (rand_distr is not a dependency;
/// one line suffices).
pub(crate) fn sample_exponential(rng: &mut StdRng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exponential_sampling_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = 2.5;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.02,
            "empirical mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sample_exponential(&mut rng, 0.1) > 0.0);
        }
    }
}
