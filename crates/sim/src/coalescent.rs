//! Multispecies-coalescent (MSC) gene-tree simulation.
//!
//! Given an ultrametric species tree with branch lengths in coalescent
//! units, each gene tree is drawn by running a Kingman coalescent within
//! every species branch, bottom-up: lineages entering a branch may merge
//! while the branch lasts; unmerged lineages are handed to the parent
//! branch; everything remaining above the species root coalesces freely.
//! This is the generative model SimPhy implements and ASTRAL-II's S100
//! datasets are produced by, which the paper uses for its simulated
//! experiments.
//!
//! Short species branches produce high discordance (few shared splits
//! across gene trees), long branches high concordance — the knob that
//! shapes the bipartition frequency distribution BFHRF's memory behaviour
//! depends on.

use crate::sample_exponential;
use crate::species::{materialize, node_heights};
use phylo::{TaxonId, TaxonSet, Tree, TreeCollection};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Simulator holding a species tree and producing gene trees under the MSC.
pub struct MscSimulator {
    species: Tree,
    taxa: TaxonSet,
    heights: Vec<f64>,
    /// Effective population scale: coalescent rate within branches is
    /// `C(k,2) / pop_scale`. Values ≫ branch lengths → star-like gene
    /// trees; values ≪ branch lengths → gene trees matching the species
    /// tree.
    pop_scale: f64,
    rng: StdRng,
}

impl MscSimulator {
    /// Create a simulator for `species` (ultrametric, leaves labelled from
    /// `taxa`), with the given population scale and RNG seed.
    pub fn new(species: Tree, taxa: TaxonSet, pop_scale: f64, seed: u64) -> Self {
        assert!(pop_scale > 0.0, "population scale must be positive");
        let heights = node_heights(&species);
        MscSimulator {
            species,
            taxa,
            heights,
            pop_scale,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The taxon namespace shared by the species tree and all gene trees.
    pub fn taxa(&self) -> &TaxonSet {
        &self.taxa
    }

    /// The species tree.
    pub fn species_tree(&self) -> &Tree {
        &self.species
    }

    /// Simulate one gene tree with one allele per species. Branch lengths
    /// are in coalescent time units.
    pub fn gene_tree(&mut self) -> Tree {
        // proto-nodes as in species.rs: (children, taxon, height)
        let mut protos: Vec<(Vec<usize>, Option<TaxonId>, f64)> = Vec::new();
        // lineage sets flowing up the species tree, per species node
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); self.species.num_nodes()];
        let root = self.species.root().expect("species tree is nonempty");
        for node in self.species.postorder() {
            let mut lineages = if self.species.is_leaf(node) {
                let taxon = self
                    .species
                    .taxon(node)
                    .expect("species leaves are labelled");
                protos.push((Vec::new(), Some(taxon), self.heights[node.index()]));
                vec![protos.len() - 1]
            } else {
                let mut merged = Vec::new();
                for &c in self.species.children(node) {
                    merged.append(&mut pending[c.index()]);
                }
                merged
            };
            // coalesce within the branch above `node`
            let start = self.heights[node.index()];
            let end = if node == root {
                f64::INFINITY
            } else {
                let parent = self.species.parent(node).unwrap();
                self.heights[parent.index()]
            };
            let mut t = start;
            while lineages.len() > 1 {
                let k = lineages.len();
                let rate = (k * (k - 1)) as f64 / 2.0 / self.pop_scale;
                t += sample_exponential(&mut self.rng, rate);
                if t >= end {
                    break;
                }
                let i = self.rng.random_range(0..lineages.len());
                let a = lineages.swap_remove(i);
                let j = self.rng.random_range(0..lineages.len());
                let b = lineages.swap_remove(j);
                protos.push((vec![a, b], None, t));
                lineages.push(protos.len() - 1);
            }
            pending[node.index()] = lineages;
        }
        let top = pending[root.index()].clone();
        debug_assert_eq!(top.len(), 1, "root branch coalesces to one lineage");
        materialize(&protos, top[0])
    }

    /// Simulate `count` gene trees as a [`TreeCollection`] sharing the
    /// species taxa.
    pub fn gene_trees(&mut self, count: usize) -> TreeCollection {
        let trees = (0..count).map(|_| self.gene_tree()).collect();
        TreeCollection {
            taxa: self.taxa.clone(),
            trees,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::kingman_species_tree;
    use phylo::BipartitionSet;

    fn sim(n: usize, pop_scale: f64, seed: u64) -> MscSimulator {
        let (sp, taxa) = kingman_species_tree(n, 1.0, seed);
        MscSimulator::new(sp, taxa, pop_scale, seed ^ 0xdead)
    }

    #[test]
    fn gene_trees_are_valid_binary_full_taxa() {
        let mut s = sim(15, 0.5, 3);
        for _ in 0..20 {
            let g = s.gene_tree();
            assert_eq!(g.validate(s.taxa()).unwrap(), 15);
            assert!(g.is_binary());
        }
    }

    #[test]
    fn low_population_scale_recovers_species_tree() {
        // With pop_scale tiny, lineages coalesce immediately within each
        // branch: gene trees match the species topology.
        let mut s = sim(12, 1e-6, 9);
        let sp_set = BipartitionSet::from_tree(s.species_tree(), &s.taxa().clone());
        for _ in 0..10 {
            let g = s.gene_tree();
            let g_set = BipartitionSet::from_tree(&g, s.taxa());
            assert_eq!(sp_set.rf_distance(&g_set), 0);
        }
    }

    #[test]
    fn high_population_scale_creates_discordance() {
        let mut s = sim(12, 100.0, 9);
        let sp_set = BipartitionSet::from_tree(s.species_tree(), &s.taxa().clone());
        let mut total = 0usize;
        for _ in 0..10 {
            let g = s.gene_tree();
            total += sp_set.rf_distance(&BipartitionSet::from_tree(&g, s.taxa()));
        }
        assert!(total > 0, "deep coalescence must shuffle topologies");
    }

    #[test]
    fn gene_tree_heights_respect_species_constraints() {
        // A gene-tree coalescence of lineages from two species cannot be
        // more recent than the species divergence: all internal gene
        // heights ≥ 0 and branch lengths ≥ 0.
        let mut s = sim(10, 1.0, 21);
        let g = s.gene_tree();
        for node in g.postorder() {
            if let Some(l) = g.length(node) {
                assert!(l >= 0.0, "negative gene branch {l}");
            }
        }
    }

    #[test]
    fn collection_has_requested_size_and_shared_taxa() {
        let mut s = sim(8, 1.0, 5);
        let coll = s.gene_trees(25);
        assert_eq!(coll.len(), 25);
        assert_eq!(coll.taxa.len(), 8);
        for t in &coll.trees {
            assert_eq!(t.leaf_count(), 8);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let trees1 = sim(10, 1.0, 77).gene_trees(5);
        let trees2 = sim(10, 1.0, 77).gene_trees(5);
        for (a, b) in trees1.trees.iter().zip(&trees2.trees) {
            assert_eq!(
                phylo::write_newick(a, &trees1.taxa),
                phylo::write_newick(b, &trees2.taxa)
            );
        }
    }
}
