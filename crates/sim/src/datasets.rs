//! Named dataset presets matching the paper's Table II.
//!
//! | Name            | Taxa `n`   | Trees `r`       | Paper source            |
//! |-----------------|------------|-----------------|-------------------------|
//! | `avian`         | 48         | 14446           | Jarvis et al. 2014      |
//! | `insect`        | 144        | 149278          | Sayyari et al. 2017     |
//! | `var-trees`     | 100        | 1000..100000    | SimPhy (ASTRAL-II S100) |
//! | `var-taxa`      | 100..1000  | 1000            | SimPhy (ASTRAL-II S100) |
//!
//! The real Avian/Insect collections are substituted by MSC simulations of
//! identical shape (same `n`, same `r`); see DESIGN.md for why this
//! preserves what the experiments measure.

use crate::coalescent::MscSimulator;
use crate::species::kingman_species_tree;
use phylo::{PhyloError, TaxaPolicy, TreeCollection};
use std::io::{BufWriter, Write};
use std::path::Path;

/// A recipe for one simulated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name used in reports and file names.
    pub name: String,
    /// Number of taxa, the paper's `n`.
    pub n_taxa: usize,
    /// Number of gene trees, the paper's `r`.
    pub n_trees: usize,
    /// Species-tree depth scale (Kingman `scale`); larger = deeper.
    pub species_scale: f64,
    /// MSC population scale; larger = more discordance among gene trees.
    pub pop_scale: f64,
    /// RNG seed — datasets are fully reproducible.
    pub seed: u64,
}

impl DatasetSpec {
    /// A custom spec with the default concordance regime (moderate
    /// discordance, like empirical gene-tree collections).
    pub fn new(name: impl Into<String>, n_taxa: usize, n_trees: usize, seed: u64) -> Self {
        DatasetSpec {
            name: name.into(),
            n_taxa,
            n_trees,
            species_scale: 1.0,
            pop_scale: 0.5,
            seed,
        }
    }

    /// Avian-shaped dataset: n=48, r=14446.
    pub fn avian() -> Self {
        DatasetSpec::new("avian", 48, 14446, 0xA71A)
    }

    /// Insect-shaped dataset: n=144, r=149278.
    pub fn insect() -> Self {
        DatasetSpec::new("insect", 144, 149_278, 0x1A5EC7)
    }

    /// Variable-trees dataset point: n=100, given `r` (paper Table V).
    pub fn variable_trees(r: usize) -> Self {
        DatasetSpec::new(format!("var-trees-{r}"), 100, r, 0x7AEE5)
    }

    /// Variable-taxa dataset point: given `n`, r=1000 (paper Table IV).
    pub fn variable_taxa(n: usize) -> Self {
        DatasetSpec::new(format!("var-taxa-{n}"), n, 1000, 0x7A8A + n as u64)
    }

    /// The same dataset truncated to its first `r` trees — the paper's
    /// Figure 1 measures prefixes of the Avian collection.
    pub fn with_trees(mut self, r: usize) -> Self {
        self.n_trees = r;
        self
    }
}

/// Generate the collection a spec describes.
pub fn generate(spec: &DatasetSpec) -> TreeCollection {
    let (species, taxa) = kingman_species_tree(spec.n_taxa, spec.species_scale, spec.seed);
    let mut sim = MscSimulator::new(
        species,
        taxa,
        spec.pop_scale,
        spec.seed.wrapping_mul(0x9E3779B9),
    );
    sim.gene_trees(spec.n_trees)
}

/// Write a collection as one Newick string per line.
pub fn write_collection(path: &Path, coll: &TreeCollection) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for tree in &coll.trees {
        writeln!(out, "{}", phylo::write_newick(tree, &coll.taxa))?;
    }
    out.flush()
}

/// Read a collection back from a Newick file (any `;`-separated layout).
pub fn read_collection(path: &Path) -> Result<TreeCollection, PhyloError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| PhyloError::parse(0, format!("cannot read {}: {e}", path.display())))?;
    let mut taxa = phylo::TaxonSet::new();
    let trees = phylo::read_trees_from_str(&text, &mut taxa, TaxaPolicy::Grow)?;
    Ok(TreeCollection { taxa, trees })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_shapes() {
        assert_eq!(
            (DatasetSpec::avian().n_taxa, DatasetSpec::avian().n_trees),
            (48, 14446)
        );
        let i = DatasetSpec::insect();
        assert_eq!((i.n_taxa, i.n_trees), (144, 149_278));
        let v = DatasetSpec::variable_trees(25000);
        assert_eq!((v.n_taxa, v.n_trees), (100, 25000));
        let x = DatasetSpec::variable_taxa(750);
        assert_eq!((x.n_taxa, x.n_trees), (750, 1000));
    }

    #[test]
    fn generate_produces_valid_collection() {
        let spec = DatasetSpec::new("unit", 20, 30, 123);
        let coll = generate(&spec);
        assert_eq!(coll.len(), 30);
        assert_eq!(coll.taxa.len(), 20);
        for t in &coll.trees {
            assert_eq!(t.validate(&coll.taxa).unwrap(), 20);
            assert!(t.is_binary());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::new("unit", 10, 5, 9);
        let a = generate(&spec);
        let b = generate(&spec);
        for (x, y) in a.trees.iter().zip(&b.trees) {
            assert_eq!(
                phylo::write_newick(x, &a.taxa),
                phylo::write_newick(y, &b.taxa)
            );
        }
    }

    #[test]
    fn with_trees_truncates_prefix_consistently() {
        // Figure 1 takes prefixes: the first r trees of the r' > r dataset
        // must equal the r-sized dataset (same seed, same generator walk).
        let long = generate(&DatasetSpec::avian().with_trees(20));
        let short = generate(&DatasetSpec::avian().with_trees(8));
        for (a, b) in short.trees.iter().zip(&long.trees) {
            assert_eq!(
                phylo::write_newick(a, &short.taxa),
                phylo::write_newick(b, &long.taxa)
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bfhrf-sim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.nwk");
        let coll = generate(&DatasetSpec::new("rt", 12, 7, 5));
        write_collection(&path, &coll).unwrap();
        let back = read_collection(&path).unwrap();
        assert_eq!(back.len(), 7);
        assert_eq!(back.taxa.len(), 12);
        // trees survive the round trip verbatim (labels + structure +
        // lengths); taxon ids may be renumbered, so compare serialized form
        for (a, b) in coll.trees.iter().zip(&back.trees) {
            assert_eq!(
                phylo::write_newick(a, &coll.taxa),
                phylo::write_newick(b, &back.taxa)
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_collection_reports_missing_file() {
        let r = read_collection(Path::new("/nonexistent/nope.nwk"));
        assert!(r.is_err());
    }
}
