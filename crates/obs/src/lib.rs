//! `phylo-obs` — zero-dependency observability for the BFHRF stack.
//!
//! The serving stack (sharded builds, persistent index, `bfhrf serve`)
//! needs runtime numbers — request latency distributions, error and
//! degradation counters, memory and WAL gauges — without pulling a metrics
//! framework into a workspace that builds hermetically. This crate is that
//! core, std-only:
//!
//! * [`Counter`] / [`Gauge`] — single atomic cells behind cheap
//!   clone-and-share handles.
//! * [`Histogram`] — fixed log2-bucket distribution with p50/p90/p99
//!   estimation; one `record` is three relaxed atomic adds and a
//!   `fetch_max`.
//! * [`Registry`] — a sharded name+label → metric table. Resolution takes
//!   one shard mutex; hot paths resolve handles **once** and then touch
//!   only atomics ("lock-light").
//! * [`ScopedTimer`] — RAII latency recording into a histogram.
//! * [`json`] — the hand-rolled JSON value/parser shared by the serve
//!   protocol, the exposition layer, and the bench emitters.
//! * [`expose`] — registry snapshots rendered as JSON (for the `stats`
//!   wire command) or aligned text (for humans).
//! * [`profile`] — a phase-timing profiler backing the CLI `--profile`
//!   flag.
//!
//! # Conventions
//!
//! Metric names are `snake_case` with a unit suffix: `_total` for
//! monotonic counters, `_ns` for nanosecond histograms, `_bytes` for byte
//! gauges, `_permille` for ratios scaled by 1000. Labels are static
//! `(key, value)` pairs with a small, bounded cardinality (command names,
//! outcome codes) — never request payloads.
//!
//! ```
//! use phylo_obs::{Registry, ScopedTimer};
//!
//! let registry = Registry::new();
//! let latency = registry.histogram("demo_request_ns", &[("op", "avgrf")]);
//! let hits = registry.counter("demo_requests_total", &[("op", "avgrf")]);
//! {
//!     let _timer = ScopedTimer::new(&latency);
//!     hits.inc();
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.len(), 2);
//! ```

pub mod expose;
pub mod json;
mod metrics;
pub mod profile;
mod registry;

pub use metrics::{
    bucket_bounds, bucket_of, Counter, Gauge, Histogram, HistogramSnapshot, ScopedTimer, N_BUCKETS,
};
pub use profile::Profiler;
pub use registry::{global, Registry, Series, SeriesValue};
