//! A phase-timing profiler backing the CLI `--profile` flag.
//!
//! A [`Profiler`] splits a command's wall time into named sequential
//! phases (`parse`, `build`, `freeze`, `query`, …). When disabled it is a
//! no-op so call sites need no `if` guards; when enabled, [`Profiler::render`]
//! produces an aligned table of per-phase durations and shares, suitable
//! for stderr.

use std::fmt::Write as _;
use std::time::Instant;

/// Sequential phase timer. See the module docs.
#[derive(Debug)]
pub struct Profiler {
    enabled: bool,
    phases: Vec<(&'static str, u64)>,
    current: Option<(&'static str, Instant)>,
}

impl Profiler {
    /// A profiler that records (`enabled = true`) or ignores everything.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            phases: Vec::new(),
            current: None,
        }
    }

    /// Whether this profiler records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn close_current(&mut self) {
        if let Some((name, start)) = self.current.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // Re-entering a phase accumulates into it.
            if let Some(slot) = self.phases.iter_mut().find(|(n, _)| *n == name) {
                slot.1 += ns;
            } else {
                self.phases.push((name, ns));
            }
        }
    }

    /// End the current phase (if any) and start `name`.
    pub fn phase(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.close_current();
        self.current = Some((name, Instant::now()));
    }

    /// End the current phase without starting another (e.g. before waiting
    /// on user-visible output that should not be attributed to a phase).
    pub fn end_phase(&mut self) {
        if self.enabled {
            self.close_current();
        }
    }

    /// Close any open phase and render the table, one line per phase plus a
    /// total, each prefixed with `profile:`. Empty string when disabled or
    /// nothing was recorded.
    pub fn render(&mut self) -> String {
        if !self.enabled {
            return String::new();
        }
        self.close_current();
        if self.phases.is_empty() {
            return String::new();
        }
        let total: u64 = self.phases.iter().map(|(_, ns)| ns).sum();
        let width = self
            .phases
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("total".len());
        let mut out = String::new();
        for (name, ns) in &self.phases {
            let share = if total == 0 {
                0.0
            } else {
                *ns as f64 / total as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "profile: {name:width$}  {:>10}  {share:5.1}%",
                crate::expose::fmt_ns(*ns as f64)
            );
        }
        let _ = writeln!(
            out,
            "profile: {:width$}  {:>10}  100.0%",
            "total",
            crate::expose::fmt_ns(total as f64)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_renders_nothing() {
        let mut p = Profiler::new(false);
        p.phase("parse");
        p.phase("build");
        assert!(!p.enabled());
        assert_eq!(p.render(), "");
    }

    #[test]
    fn phases_accumulate_and_render() {
        let mut p = Profiler::new(true);
        p.phase("parse");
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.phase("build");
        std::thread::sleep(std::time::Duration::from_millis(1));
        p.phase("parse"); // re-entry accumulates
        p.end_phase();
        let table = p.render();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "parse, build, total: {table}");
        assert!(lines.iter().all(|l| l.starts_with("profile: ")));
        assert!(table.contains("parse"));
        assert!(table.contains("build"));
        assert!(lines[2].contains("total"));
        assert!(lines[2].contains("100.0%"));
    }

    #[test]
    fn empty_enabled_profiler_renders_nothing() {
        let mut p = Profiler::new(true);
        assert_eq!(p.render(), "");
    }
}
