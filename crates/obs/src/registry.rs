//! The sharded metric registry: `(name, labels)` → metric handle.
//!
//! Registration and lookup take one shard mutex; the returned handles are
//! plain `Arc`s, so a caller that resolves its handles once (the serve
//! daemon does this at bind time) never touches the registry again on the
//! hot path. Names and label keys/values are `&'static str` — series are
//! a small, statically known set, never derived from request payloads.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

const REGISTRY_SHARDS: usize = 16;

/// Static label pairs identifying one series within a metric name.
type LabelSet = Vec<(&'static str, &'static str)>;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One series in a registry snapshot, ready for exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric name (`snake_case`, unit-suffixed).
    pub name: &'static str,
    /// Label pairs, sorted by key.
    pub labels: Vec<(&'static str, &'static str)>,
    /// The captured value.
    pub value: SeriesValue,
}

/// The captured value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Point-in-time gauge reading.
    Gauge(i64),
    /// Full distribution snapshot (boxed: 65 buckets dwarf the scalars).
    Histogram(Box<HistogramSnapshot>),
}

/// A sharded name+label → metric table. See the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [Mutex<HashMap<(&'static str, LabelSet), Metric>>; REGISTRY_SHARDS],
}

fn canonical(labels: &[(&'static str, &'static str)]) -> LabelSet {
    let mut set: LabelSet = labels.to_vec();
    set.sort_unstable();
    set
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name: series of one family stay on one shard, which
    // keeps snapshots cheap and contention spread across families.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % REGISTRY_SHARDS as u64) as usize
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn resolve(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = (name, canonical(labels));
        let mut shard = self.shards[shard_of(name)]
            .lock()
            .expect("metric registry poisoned");
        let entry = shard.entry(key).or_insert_with(make);
        entry.clone()
    }

    /// The counter `name{labels}`, created at zero on first use.
    ///
    /// # Panics
    /// If the same series was already registered as a different kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &'static str)]) -> Counter {
        match self.resolve(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("{name} is registered as a {}, not a counter", other.kind()),
        }
    }

    /// The gauge `name{labels}`, created at zero on first use.
    ///
    /// # Panics
    /// On a kind conflict, like [`Registry::counter`].
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &'static str)]) -> Gauge {
        match self.resolve(name, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("{name} is registered as a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram `name{labels}`, created empty on first use.
    ///
    /// # Panics
    /// On a kind conflict, like [`Registry::counter`].
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Histogram {
        match self.resolve(name, labels, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!(
                "{name} is registered as a {}, not a histogram",
                other.kind()
            ),
        }
    }

    /// Capture every series, sorted by `(name, labels)` so the output is
    /// deterministic and exposition formats are schema-stable.
    pub fn snapshot(&self) -> Vec<Series> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("metric registry poisoned");
            for ((name, labels), metric) in shard.iter() {
                let value = match metric {
                    Metric::Counter(c) => SeriesValue::Counter(c.get()),
                    Metric::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Metric::Histogram(h) => SeriesValue::Histogram(Box::new(h.snapshot())),
                };
                out.push(Series {
                    name,
                    labels: labels.clone(),
                    value,
                });
            }
        }
        out.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every layer of the stack instruments into.
/// One daemon process = one registry; tests that need isolation construct
/// their own [`Registry`].
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_series_shares_one_cell() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("op", "a")]);
        let b = r.counter("x_total", &[("op", "a")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Label order does not split the series.
        let c1 = r.counter("y_total", &[("a", "1"), ("b", "2")]);
        let c2 = r.counter("y_total", &[("b", "2"), ("a", "1")]);
        c1.inc();
        assert_eq!(c2.get(), 1);
        // Different labels do.
        let other = r.counter("x_total", &[("op", "b")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b_total", &[]).add(2);
        r.gauge("a_gauge", &[("k", "v")]).set(-5);
        r.histogram("c_ns", &[]).record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a_gauge", "b_total", "c_ns"]);
        assert_eq!(snap[0].value, SeriesValue::Gauge(-5));
        assert_eq!(snap[1].value, SeriesValue::Counter(2));
        match &snap[2].value {
            SeriesValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("conflict", &[]);
        r.gauge("conflict", &[]);
    }
}
