//! A minimal JSON value, writer, and parser for the serve protocol.
//!
//! The workspace builds hermetically (no serde), and the newline-delimited
//! protocol needs only scalars, arrays, and flat objects — small enough
//! that a hand-rolled recursive-descent parser is clearer than a
//! dependency. Numbers are `f64`; every integer the protocol carries
//! (counts, RF totals) is far below 2^53, so the round trip is exact.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always emitted in shortest-round-trip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are out of protocol scope;
                            // map them to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run free of quotes and escapes,
                    // validated as UTF-8 once. (`"` and `\` are ASCII, so
                    // they never split a multibyte scalar; validating from
                    // the cursor to end-of-input per character instead
                    // makes large frames quadratic.)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Json::obj(vec![
            ("op", "avgrf".into()),
            (
                "queries",
                Json::Arr(vec!["((A,B),(C,D));".into(), "((A,C),(B,D));".into()]),
            ),
            ("normalized", true.into()),
            ("count", 42u64.into()),
            ("avg", 1.5.into()),
            ("nothing", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.starts_with("{\"op\":\"avgrf\""), "{text}");
        assert!(
            text.contains("\"count\":42"),
            "integers stay integral: {text}"
        );
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a":1,"b":[true,null],"c":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_are_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
