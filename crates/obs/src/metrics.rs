//! The atomic metric primitives: counters, gauges, log2-bucket histograms,
//! and the RAII timer that feeds them.
//!
//! Every operation on a live metric is a handful of `Relaxed` atomic
//! instructions — no locks, no allocation — so instrumentation can sit on
//! a request path without distorting what it measures. Handles are `Arc`s
//! around the cells: clone freely, share across threads.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Bucket count of a [`Histogram`]: bucket 0 holds the value 0, bucket
/// `k ≥ 1` holds values whose bit length is `k` (the range
/// `[2^(k-1), 2^k)`), up to bucket 64 ending at `u64::MAX`.
pub const N_BUCKETS: usize = 65;

/// The bucket index a value lands in: 0 for 0, otherwise the value's bit
/// length (`1` → 1, `2..=3` → 2, `2^k..2^(k+1)` → k+1, `u64::MAX` → 64).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `b`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (b - 1), (1 << b) - 1),
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (active connections, last-build rate, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed log2-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Recording is wait-free; quantiles are estimated from a bucket snapshot
/// by linear interpolation inside the bucket holding the requested rank,
/// so an estimate is always within the true quantile's bucket — at most a
/// factor of 2 off for values ≥ 1, and exact at bucket boundaries' lower
/// edges.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let core = &*self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
        core.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution. Under concurrent writers
    /// the copy may be mid-update by a few samples; after writers are
    /// joined it is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; N_BUCKETS],
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by interpolating inside
    /// the bucket that holds rank `q · (count − 1)`. Returns 0 for an
    /// empty histogram. The estimate never leaves its bucket, so it is
    /// within a factor of 2 of the true quantile and never exceeds
    /// [`HistogramSnapshot::max`]'s bucket upper bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = seen + c;
            if rank < upto as f64 || upto == self.count {
                let (lo, hi) = bucket_bounds(b);
                // Clip the top bucket to the observed max: better than
                // reporting 2^k when the largest sample is known.
                let hi = (hi.min(self.max)).max(lo) as f64;
                let lo = lo as f64;
                if c == 1 {
                    return (lo + hi) / 2.0;
                }
                let frac = (rank - seen as f64).clamp(0.0, (c - 1) as f64) / (c - 1) as f64;
                return lo + frac * (hi - lo);
            }
            seen = upto;
        }
        self.max as f64
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// RAII timer: records the elapsed time into a histogram (in nanoseconds)
/// when dropped.
///
/// ```
/// use phylo_obs::{Histogram, ScopedTimer};
/// let h = Histogram::new();
/// {
///     let _t = ScopedTimer::new(&h);
///     // ... timed work ...
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Option<Histogram>,
    start: Instant,
}

impl ScopedTimer {
    /// Start timing into `hist`.
    pub fn new(hist: &Histogram) -> Self {
        ScopedTimer {
            hist: Some(hist.clone()),
            start: Instant::now(),
        }
    }

    /// Stop early and record now instead of at scope exit.
    pub fn stop(mut self) {
        self.record();
    }

    /// Abandon the measurement: nothing is recorded.
    pub fn discard(mut self) {
        self.hist = None;
    }

    fn record(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record_duration(self.start.elapsed());
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Clones share the cell.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43);

        let g = Gauge::new();
        g.set(7);
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 10);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for k in 1..63 {
            let v = 1u64 << k;
            assert_eq!(bucket_of(v - 1), k, "2^{k}-1");
            assert_eq!(bucket_of(v), k + 1, "2^{k}");
            assert_eq!(bucket_of(v + 1), k + 1, "2^{k}+1");
        }
        assert_eq!(bucket_of(u64::MAX), 64);
        // Bounds tile the u64 range without gaps or overlaps.
        let mut next = 0u64;
        for b in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(lo, next, "bucket {b} starts where {} ended", b - 1);
            assert!(hi >= lo);
            next = hi.wrapping_add(1);
        }
        assert_eq!(next, 0, "bucket 64 ends at u64::MAX");
    }

    #[test]
    fn scoped_timer_records_and_discards() {
        let h = Histogram::new();
        {
            let _t = ScopedTimer::new(&h);
        }
        ScopedTimer::new(&h).stop();
        ScopedTimer::new(&h).discard();
        assert_eq!(h.count(), 2);
    }
}
