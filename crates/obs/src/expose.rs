//! Exposition: render a registry snapshot for machines (JSON, served by the
//! `stats` wire command) or humans (an aligned text table, `bfhrf stats`).
//!
//! The JSON schema is deliberately flat and stable — golden-tested — so
//! operators can scrape it with one `jq` expression:
//!
//! ```json
//! {"series":[
//!   {"name":"serve_requests_total","labels":{"op":"avgrf","outcome":"ok"},
//!    "kind":"counter","value":12},
//!   {"name":"serve_request_ns","labels":{"op":"avgrf"},"kind":"histogram",
//!    "count":12,"sum":48000,"max":9000,"mean":4000.0,
//!    "p50":3100.0,"p90":7800.0,"p99":8900.0,
//!    "buckets":[{"le":4095,"n":3},{"le":8191,"n":8},{"le":16383,"n":1}]}
//! ]}
//! ```
//!
//! Histogram buckets are emitted sparsely (non-empty only) with their
//! inclusive upper bound `le`, keeping a 65-bucket histogram's wire size
//! proportional to the spread actually observed.

use crate::json::Json;
use crate::metrics::{bucket_bounds, HistogramSnapshot};
use crate::registry::{Series, SeriesValue};
use std::fmt::Write as _;

fn labels_json(labels: &[(&'static str, &'static str)]) -> Json {
    Json::Obj(
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), Json::Str(v.to_string())))
            .collect(),
    )
}

fn histogram_json(h: &HistogramSnapshot) -> Vec<(&'static str, Json)> {
    let buckets: Vec<Json> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(b, &n)| Json::obj(vec![("le", bucket_bounds(b).1.into()), ("n", n.into())]))
        .collect();
    vec![
        ("count", h.count.into()),
        ("sum", h.sum.into()),
        ("max", h.max.into()),
        ("mean", h.mean().into()),
        ("p50", h.quantile(0.50).into()),
        ("p90", h.quantile(0.90).into()),
        ("p99", h.quantile(0.99).into()),
        ("buckets", Json::Arr(buckets)),
    ]
}

/// Render a snapshot as the stable `{"series":[...]}` JSON document.
pub fn to_json(series: &[Series]) -> Json {
    let items = series
        .iter()
        .map(|s| {
            let mut pairs = vec![
                ("name", Json::from(s.name)),
                ("labels", labels_json(&s.labels)),
            ];
            match &s.value {
                SeriesValue::Counter(v) => {
                    pairs.push(("kind", "counter".into()));
                    pairs.push(("value", (*v).into()));
                }
                SeriesValue::Gauge(v) => {
                    pairs.push(("kind", "gauge".into()));
                    pairs.push(("value", (*v).into()));
                }
                SeriesValue::Histogram(h) => {
                    pairs.push(("kind", "histogram".into()));
                    pairs.extend(histogram_json(h));
                }
            }
            Json::obj(pairs)
        })
        .collect();
    Json::obj(vec![("series", Json::Arr(items))])
}

/// Format a nanosecond quantity with a readable unit (`1.2ms`, `340ns`).
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn label_suffix(labels: &[(&'static str, &'static str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// Render a snapshot as an aligned human-readable table, one series per
/// line. Nanosecond histograms (`_ns` names) show scaled quantiles.
pub fn to_text(series: &[Series]) -> String {
    let mut rows: Vec<(String, String)> = Vec::with_capacity(series.len());
    for s in series {
        let key = format!("{}{}", s.name, label_suffix(&s.labels));
        let value = match &s.value {
            SeriesValue::Counter(v) => format!("{v}"),
            SeriesValue::Gauge(v) => format!("{v}"),
            SeriesValue::Histogram(h) if h.count == 0 => "count=0".to_string(),
            SeriesValue::Histogram(h) => {
                let show: fn(f64) -> String = if s.name.ends_with("_ns") {
                    fmt_ns
                } else {
                    |v: f64| format!("{v:.0}")
                };
                format!(
                    "count={} mean={} p50={} p90={} p99={} max={}",
                    h.count,
                    show(h.mean()),
                    show(h.quantile(0.50)),
                    show(h.quantile(0.90)),
                    show(h.quantile(0.99)),
                    show(h.max as f64),
                )
            }
        };
        rows.push((key, value));
    }
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (key, value) in rows {
        let _ = writeln!(out, "{key:width$}  {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::registry::Registry;

    fn sample() -> Registry {
        let r = Registry::new();
        r.counter("req_total", &[("op", "avgrf"), ("outcome", "ok")])
            .add(12);
        r.gauge("gen", &[]).set(3);
        let h = r.histogram("req_ns", &[("op", "avgrf")]);
        for v in [900, 3_000, 3_100, 7_800] {
            h.record(v);
        }
        r
    }

    #[test]
    fn json_round_trips_through_parser() {
        let doc = to_json(&sample().snapshot());
        let parsed = json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed, doc);
        let series = parsed.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 3);
        // Sorted by name: gen, req_ns, req_total.
        assert_eq!(series[0].get("name").unwrap().as_str(), Some("gen"));
        assert_eq!(series[0].get("kind").unwrap().as_str(), Some("gauge"));
        let hist = &series[1];
        assert_eq!(hist.get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(4));
        assert!(hist.get("p50").unwrap().as_f64().is_some());
        let buckets = hist.get("buckets").unwrap().as_arr().unwrap();
        assert!(!buckets.is_empty());
        for b in buckets {
            assert!(b.get("le").unwrap().as_u64().is_some());
            assert!(b.get("n").unwrap().as_u64().unwrap() > 0);
        }
        assert_eq!(
            series[2]
                .get("labels")
                .unwrap()
                .get("outcome")
                .unwrap()
                .as_str(),
            Some("ok")
        );
        assert_eq!(series[2].get("value").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn text_is_aligned_and_scaled() {
        let text = to_text(&sample().snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("gen"));
        assert!(lines[1].contains("req_ns{op=avgrf}"));
        assert!(lines[1].contains("us"), "ns histograms use units: {text}");
        assert!(lines[2].contains("12"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(340.0), "340ns");
        assert_eq!(fmt_ns(4_500.0), "4.5us");
        assert_eq!(fmt_ns(2_300_000.0), "2.30ms");
        assert_eq!(fmt_ns(1.5e9), "1.50s");
    }
}
