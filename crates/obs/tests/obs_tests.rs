//! Integration tests for the metrics core: quantile error bounds, a
//! multi-thread hammer asserting no lost updates, and a golden exposition
//! test pinning the `stats` JSON schema.

use phylo_obs::{bucket_bounds, bucket_of, expose, json, Histogram, Registry, N_BUCKETS};
use std::thread;

#[test]
fn quantile_error_is_bounded_by_bucket_width() {
    // A geometric spread of exact samples: every quantile estimate must
    // land inside the bucket of the true rank-order statistic, i.e. within
    // a factor of 2 (and within [lo, hi] of that bucket exactly).
    let samples: Vec<u64> = (0..2000u64).map(|i| (i * i) % 100_000 + 1).collect();
    let mut sorted = samples.clone();
    sorted.sort_unstable();

    let h = Histogram::new();
    for &v in &samples {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, samples.len() as u64);
    assert_eq!(snap.sum, samples.iter().sum::<u64>());
    assert_eq!(snap.max, *sorted.last().unwrap());

    for &q in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        let truth = sorted[rank];
        let est = snap.quantile(q);
        let (lo, hi) = bucket_bounds(bucket_of(truth));
        assert!(
            est >= lo as f64 && est <= hi as f64,
            "q={q}: estimate {est} outside bucket [{lo}, {hi}] of true value {truth}"
        );
        // Factor-of-2 bound for values >= 1.
        assert!(est <= 2.0 * truth as f64 && 2.0 * est >= truth as f64);
    }
    // Quantiles never exceed the observed max even in the top bucket.
    assert!(snap.quantile(1.0) <= snap.max as f64);
}

#[test]
fn quantiles_of_uniform_samples_are_monotone() {
    let h = Histogram::new();
    for v in 1..=10_000u64 {
        h.record(v);
    }
    let snap = h.snapshot();
    let mut prev = -1.0;
    for i in 0..=100 {
        let q = i as f64 / 100.0;
        let est = snap.quantile(q);
        assert!(est >= prev, "quantile not monotone at q={q}");
        prev = est;
    }
}

#[test]
fn eight_thread_hammer_loses_no_updates() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;

    let reg = Registry::new();
    let counter = reg.counter("hammer_total", &[]);
    let hist = reg.histogram("hammer_ns", &[]);

    thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // Deterministic spread across many buckets.
                    hist.record((t * PER_THREAD + i) % 1_000_003);
                }
            });
        }
    });

    let expected = THREADS * PER_THREAD;
    assert_eq!(counter.get(), expected, "counter lost updates");
    let snap = hist.snapshot();
    assert_eq!(snap.count, expected, "histogram count lost updates");
    assert_eq!(
        snap.buckets.iter().sum::<u64>(),
        expected,
        "bucket totals lost updates"
    );
    let exact_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t * PER_THREAD + i) % 1_000_003))
        .sum();
    assert_eq!(snap.sum, exact_sum, "histogram sum lost updates");
}

#[test]
fn exposition_golden_schema() {
    // An isolated registry with one series of each kind, pinned to the
    // exact wire bytes: this is the schema the `stats` command promises.
    let reg = Registry::new();
    reg.counter("demo_requests_total", &[("op", "avgrf"), ("outcome", "ok")])
        .add(3);
    reg.gauge("demo_generation", &[]).set(2);
    let h = reg.histogram("demo_request_ns", &[("op", "avgrf")]);
    h.record(5); // bucket 3: [4, 7]
    h.record(6); // bucket 3
    h.record(9); // bucket 4: [8, 15]

    let doc = expose::to_json(&reg.snapshot());
    let golden = concat!(
        "{\"series\":[",
        "{\"name\":\"demo_generation\",\"labels\":{},\"kind\":\"gauge\",\"value\":2},",
        "{\"name\":\"demo_request_ns\",\"labels\":{\"op\":\"avgrf\"},\"kind\":\"histogram\",",
        "\"count\":3,\"sum\":20,\"max\":9,\"mean\":6.666666666666667,",
        "\"p50\":7,\"p90\":7,\"p99\":7,",
        "\"buckets\":[{\"le\":7,\"n\":2},{\"le\":15,\"n\":1}]},",
        "{\"name\":\"demo_requests_total\",\"labels\":{\"op\":\"avgrf\",\"outcome\":\"ok\"},",
        "\"kind\":\"counter\",\"value\":3}",
        "]}"
    );
    assert_eq!(doc.to_string(), golden);
    // And the wire bytes parse back to the same value.
    assert_eq!(json::parse(golden).unwrap(), doc);
}

#[test]
fn histogram_covers_full_u64_range() {
    let h = Histogram::new();
    h.record(0);
    h.record(1);
    h.record(u64::MAX);
    let snap = h.snapshot();
    assert_eq!(snap.buckets[0], 1);
    assert_eq!(snap.buckets[1], 1);
    assert_eq!(snap.buckets[N_BUCKETS - 1], 1);
    assert_eq!(snap.max, u64::MAX);
    assert!(snap.quantile(1.0) <= u64::MAX as f64);
}
