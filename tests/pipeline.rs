//! Cross-crate integration: simulation → serialization → parsing →
//! analysis, with every algorithm agreeing along the way.

use bfhrf::{
    best_query, bfhrf_all, day_rf, Bfh, BfhBuilder, BfhrfComparator, Comparator, HashRf,
    HashRfConfig,
};
use phylo::{BipartitionSet, TaxaPolicy, TaxonSet};
use phylo_sim::coalescent::MscSimulator;
use phylo_sim::datasets::{read_collection, write_collection, DatasetSpec};
use phylo_sim::species::kingman_species_tree;
use std::io::BufReader;

#[test]
fn simulate_write_read_analyze() {
    let dir = std::env::temp_dir().join("bfhrf-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.nwk");

    // simulate and persist
    let spec = DatasetSpec::new("integration", 24, 60, 7);
    let coll = phylo_sim::generate(&spec);
    write_collection(&path, &coll).unwrap();

    // reload from disk; namespace numbering may differ but labels agree
    let reloaded = read_collection(&path).unwrap();
    assert_eq!(reloaded.len(), 60);
    assert_eq!(reloaded.taxa.len(), 24);

    // all four implementations agree on the reloaded data (Q is R)
    let bfh = Bfh::build(&reloaded.trees, &reloaded.taxa);
    let fast = bfhrf_all(&reloaded.trees, &reloaded.taxa, &bfh).unwrap();
    let slow = bfhrf::sequential_rf(&reloaded.trees, &reloaded.trees, &reloaded.taxa).unwrap();
    assert_eq!(fast, slow);
    let h = HashRf::compute(&reloaded.trees, &reloaded.taxa, &HashRfConfig::default()).unwrap();
    for s in &fast {
        assert!((h.averages()[s.index] - s.rf.average()).abs() < 1e-9);
    }
    // Day's oracle on a sample of pairs
    for i in [0usize, 7, 33] {
        let total: u64 = reloaded
            .trees
            .iter()
            .map(|t| day_rf(&reloaded.trees[i], t, &reloaded.taxa) as u64)
            .sum();
        assert_eq!(total, fast[i].rf.total());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_file_analysis_matches_in_memory() {
    let dir = std::env::temp_dir().join("bfhrf-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.nwk");
    let spec = DatasetSpec::new("stream", 16, 40, 9);
    let coll = phylo_sim::generate(&spec);
    write_collection(&path, &coll).unwrap();

    // streaming build + streaming queries against the file
    let mut taxa = TaxonSet::with_numbered("t", 16);
    let bfh_streamed = BfhBuilder::new()
        .shards(2)
        .from_newick_reader(
            BufReader::new(std::fs::File::open(&path).unwrap()),
            &mut taxa,
            TaxaPolicy::Require,
        )
        .unwrap();
    let streamed = bfhrf::rf::bfhrf_streaming(
        BufReader::new(std::fs::File::open(&path).unwrap()),
        &mut taxa,
        &bfh_streamed,
    )
    .unwrap();

    // in-memory reference result
    let bfh = Bfh::build(&coll.trees, &coll.taxa);
    let batch = bfhrf_all(&coll.trees, &coll.taxa, &bfh).unwrap();

    assert_eq!(batch.len(), streamed.len());
    for (a, b) in batch.iter().zip(&streamed) {
        assert_eq!(a.rf.total(), b.rf.total());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn species_tree_recovery_under_low_ils() {
    // with long species branches the gene trees concentrate on the truth:
    // the species tree minimizes avg RF and the consensus recovers it
    let (species, taxa) = kingman_species_tree(20, 2.0, 31);
    let mut sim = MscSimulator::new(species.clone(), taxa.clone(), 0.01, 17);
    let genes = sim.gene_trees(200);

    let bfh = BfhBuilder::new()
        .parallel(true)
        .shards(4)
        .from_trees(&genes.trees, &genes.taxa)
        .unwrap();

    // candidate ranking: truth + perturbations
    use phylo_sim::perturb::nni_walk;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut candidates = vec![species.clone()];
    for k in 1..10 {
        candidates.push(nni_walk(&species, k, &mut rng));
    }
    let scores = BfhrfComparator::new(&bfh, &genes.taxa)
        .parallel(true)
        .average_all(&candidates)
        .unwrap();
    assert_eq!(best_query(&scores).unwrap().index, 0);

    // consensus recovery
    let maj = bfhrf::consensus::majority_consensus(&bfh, &genes.taxa, 0.5).unwrap();
    let truth = BipartitionSet::from_tree(&species, &taxa);
    let got = BipartitionSet::from_tree(&maj, &genes.taxa);
    // a borderline split can dip below 50% by sampling noise; allow at
    // most one unresolved edge
    assert!(
        truth.rf_distance(&got) <= 1,
        "majority consensus ≈ species tree, RF = {}",
        truth.rf_distance(&got)
    );
}

#[test]
fn variable_taxa_pipeline() {
    // collections missing different taxa still compare on the common core
    let refs = phylo::TreeCollection::parse(
        "((a,b),((c,d),((e,f),g)));
         ((a,b),((c,d),(e,(f,g))));
         ((a,(b,h)),((c,d),(e,f)));",
    )
    .unwrap();
    let queries = phylo::TreeCollection::parse("((a,b),((c,d),(e,(f,i))));").unwrap();
    let out = bfhrf::variable_taxa::common_taxa_rf(&refs, &queries).unwrap();
    // common to every tree: a,b,c,d,e,f (g missing in tree 3, h only in
    // tree 3, i only in the query)
    assert_eq!(out.taxa.len(), 6);
    for t in out.refs.iter().chain(&out.queries) {
        assert_eq!(t.leaf_count(), 6);
    }
    // the restricted query shares {a,b} and {c,d} with every reference
    let score = out.scores[0];
    let direct = bfhrf::sequential_rf(&out.queries, &out.refs, &out.taxa).unwrap()[0];
    assert_eq!(score.rf.total(), direct.rf.total());
}

#[test]
fn incremental_hash_tracks_live_collection() {
    let spec = DatasetSpec::new("inc", 12, 30, 13);
    let coll = phylo_sim::generate(&spec);
    // sliding window of 10 trees over the collection
    let mut bfh = Bfh::empty(coll.taxa.len());
    for t in &coll.trees[..10] {
        bfh.add_tree(t, &coll.taxa);
    }
    for step in 0..20 {
        bfh.remove_tree(&coll.trees[step], &coll.taxa).unwrap();
        bfh.add_tree(&coll.trees[step + 10], &coll.taxa);
        // window now covers trees step+1 ..= step+10
        let window = &coll.trees[step + 1..step + 11];
        let direct = Bfh::build(window, &coll.taxa);
        assert_eq!(bfh.sum(), direct.sum(), "window at step {step}");
        assert_eq!(bfh.distinct(), direct.distinct());
        // spot-check a query against both
        let a = bfhrf::bfhrf_average(&coll.trees[0], &coll.taxa, &bfh);
        let b = bfhrf::bfhrf_average(&coll.trees[0], &coll.taxa, &direct);
        assert_eq!(a, b);
    }
}
