//! Workspace-level acceptance for the persistent index + query daemon:
//!
//! 1. An index built by `bfhrf index build` loads back a hash that is
//!    *bitwise identical* to an in-memory build from the same Newick —
//!    same counters, same per-split frequencies, same `average_all`.
//! 2. A served `avgrf` answer over that index is byte-identical to the
//!    offline `bfhrf avgrf` report on the same files.

use bfhrf::{BfhrfComparator, Comparator as _};
use bfhrf_cli::server::{ServeConfig, Server};
use bfhrf_cli::{run_full, EXIT_OK};
use phylo::write_newick;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfhrf-suite-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn runv(parts: &[&str]) -> bfhrf_cli::CmdOutcome {
    let out = run_full(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
    assert_eq!(out.code, EXIT_OK, "{:?}", out.notes);
    out
}

#[test]
fn snapshot_load_serves_offline_identical_answers() {
    let dir = scratch("accept");

    // Simulated reference collection + a query set drawn from the same
    // namespace (a handful of the references, so the answers are non-trivial).
    let refs_path = dir.join("refs.nwk");
    runv(&[
        "simulate",
        "--taxa",
        "24",
        "--trees",
        "60",
        "--out",
        refs_path.to_str().unwrap(),
        "--seed",
        "4077",
    ]);
    let collection = phylo_sim::datasets::read_collection(&refs_path).unwrap();
    let queries_path = dir.join("queries.nwk");
    let queries_newick: String = collection
        .trees
        .iter()
        .step_by(11)
        .map(|t| format!("{}\n", write_newick(t, &collection.taxa)))
        .collect();
    std::fs::write(&queries_path, &queries_newick).unwrap();
    let query_trees: Vec<phylo::Tree> = collection.trees.iter().step_by(11).cloned().collect();

    // Build the on-disk index through the CLI, then load it back and
    // compare against a fresh in-memory build: the acceptance bar is
    // bitwise equality, not statistical agreement.
    let index_dir = dir.join("index");
    runv(&[
        "index",
        "build",
        "--refs",
        refs_path.to_str().unwrap(),
        "--out",
        index_dir.to_str().unwrap(),
    ]);
    let fresh = bfhrf::Bfh::build(&collection.trees, &collection.taxa);
    let index = phylo_index::Index::open(&index_dir).unwrap();
    let loaded = index.bfh();
    assert_eq!(loaded.n_taxa(), fresh.n_taxa());
    assert_eq!(loaded.n_trees(), fresh.n_trees());
    assert_eq!(loaded.sum(), fresh.sum());
    assert_eq!(loaded.distinct(), fresh.distinct());
    for (bits, freq) in fresh.iter() {
        assert_eq!(loaded.frequency(bits), freq, "split dropped or rescored");
    }
    for (bits, freq) in loaded.iter() {
        assert_eq!(fresh.frequency(bits), freq, "split invented by the loader");
    }

    // average_all over the loaded hash matches the in-memory hash exactly
    // (integer RF sums, so equality is well-defined).
    let from_fresh = BfhrfComparator::new(&fresh, &collection.taxa)
        .average_all(&query_trees)
        .unwrap();
    let from_loaded = BfhrfComparator::new(loaded, index.taxa())
        .average_all(&query_trees)
        .unwrap();
    assert_eq!(from_fresh.len(), from_loaded.len());
    for (a, b) in from_fresh.iter().zip(&from_loaded) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.rf.left, b.rf.left);
        assert_eq!(a.rf.right, b.rf.right);
        assert_eq!(a.rf.n_refs, b.rf.n_refs);
    }
    drop(index);

    // Serve the index and close the loop: `bfhrf query` against the daemon
    // must print the exact bytes `bfhrf avgrf` prints offline.
    let srv = Server::bind(&ServeConfig {
        index_dir: index_dir.clone(),
        addr: "127.0.0.1:0".into(),
        threads: 2,
        mem_budget: None,
        timeout_ms: None,
        catalog_dir: None,
    })
    .unwrap();
    let addr = srv.local_addr().to_string();
    let handle = std::thread::spawn(move || srv.run().unwrap());

    let offline = runv(&[
        "avgrf",
        "--refs",
        refs_path.to_str().unwrap(),
        "--queries",
        queries_path.to_str().unwrap(),
    ]);
    let served = runv(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        queries_path.to_str().unwrap(),
    ]);
    assert_eq!(served.stdout, offline.stdout, "served answers diverged");

    let best_offline = runv(&[
        "best",
        "--refs",
        refs_path.to_str().unwrap(),
        "--queries",
        queries_path.to_str().unwrap(),
    ]);
    let best_served = runv(&[
        "query",
        "--addr",
        &addr,
        "--op",
        "best-query",
        "--queries",
        queries_path.to_str().unwrap(),
    ]);
    assert_eq!(best_served.stdout, best_offline.stdout);

    let bye = runv(&["query", "--addr", &addr, "--op", "shutdown"]);
    assert_eq!(bye.stdout, "shutdown\tok\n");
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
