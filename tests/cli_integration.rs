//! Integration tests driving the CLI layer against generated files — the
//! user-facing surface the paper advertises ("easy to use installation and
//! interface").

use std::path::PathBuf;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("bfhrf-cli-integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(parts: &[&str]) -> Result<String, String> {
    bfhrf_cli::run(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

#[test]
fn simulate_then_analyze_roundtrip() {
    let dir = workdir();
    let data = dir.join("cli-sim.nwk");
    let msg = run(&[
        "simulate",
        "--taxa",
        "20",
        "--trees",
        "50",
        "--out",
        data.to_str().unwrap(),
        "--seed",
        "11",
    ])
    .unwrap();
    assert!(msg.contains("wrote 50 trees"));

    // self average-RF over the simulated file
    let table = run(&["avgrf", "--refs", data.to_str().unwrap()]).unwrap();
    assert_eq!(table.lines().count(), 51, "header + one row per query");
    // all four algorithm selections agree line-for-line
    for alg in ["bfhrf-seq", "ds", "dsmp"] {
        let other = run(&[
            "avgrf",
            "--refs",
            data.to_str().unwrap(),
            "--algorithm",
            alg,
        ])
        .unwrap();
        assert_eq!(table, other, "algorithm {alg} diverged");
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn consensus_output_reparses_and_matrix_is_symmetric() {
    let dir = workdir();
    let data = dir.join("cli-cons.nwk");
    run(&[
        "simulate",
        "--taxa",
        "12",
        "--trees",
        "30",
        "--out",
        data.to_str().unwrap(),
        "--seed",
        "5",
        "--pop-scale",
        "0.1",
    ])
    .unwrap();

    let newick = run(&["consensus", "--refs", data.to_str().unwrap()]).unwrap();
    let reparsed = phylo::TreeCollection::parse(&newick).unwrap();
    assert_eq!(reparsed.len(), 1);
    assert_eq!(reparsed.taxa.len(), 12);

    let matrix = run(&["matrix", "--refs", data.to_str().unwrap()]).unwrap();
    let rows: Vec<Vec<u32>> = matrix
        .lines()
        .map(|l| l.split('\t').map(|c| c.parse().unwrap()).collect())
        .collect();
    assert_eq!(rows.len(), 30);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[i], 0);
        for (j, &cell) in row.iter().enumerate() {
            assert_eq!(cell, rows[j][i]);
        }
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn best_query_against_separate_reference_file() {
    let dir = workdir();
    let refs = dir.join("cli-refs.nwk");
    run(&[
        "simulate",
        "--taxa",
        "16",
        "--trees",
        "80",
        "--out",
        refs.to_str().unwrap(),
        "--seed",
        "21",
        "--pop-scale",
        "0.05",
    ])
    .unwrap();
    // queries: the consensus (a strong candidate) + a random-ish tree
    let consensus = run(&["consensus", "--refs", refs.to_str().unwrap()]).unwrap();
    let shuffled = {
        // a deliberately bad candidate: caterpillar over the same labels
        let coll = phylo_sim::datasets::read_collection(&refs).unwrap();
        let labels: Vec<&str> = coll.taxa.iter().map(|(_, l)| l).collect();
        let mut s = labels[0].to_string();
        for l in &labels[1..] {
            s = format!("({s},{l})");
        }
        format!("{s};")
    };
    let queries = dir.join("cli-queries.nwk");
    std::fs::write(&queries, format!("{shuffled}\n{consensus}")).unwrap();
    let out = run(&[
        "best",
        "--refs",
        refs.to_str().unwrap(),
        "--queries",
        queries.to_str().unwrap(),
    ])
    .unwrap();
    assert!(
        out.contains("best_query\t1"),
        "consensus must beat the caterpillar: {out}"
    );
    std::fs::remove_file(&refs).ok();
    std::fs::remove_file(&queries).ok();
}

#[test]
fn cli_surfaces_parse_errors_with_location() {
    let dir = workdir();
    let bad = dir.join("bad.nwk");
    std::fs::write(&bad, "((A,B),(C,D);\n").unwrap();
    let err = run(&["avgrf", "--refs", bad.to_str().unwrap()]).unwrap_err();
    assert!(err.contains("parse error"), "got: {err}");
    std::fs::remove_file(&bad).ok();
}
