//! Integration tests driving the CLI layer against generated files — the
//! user-facing surface the paper advertises ("easy to use installation and
//! interface").

use std::path::PathBuf;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("bfhrf-cli-integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(parts: &[&str]) -> Result<String, String> {
    bfhrf_cli::run(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

#[test]
fn simulate_then_analyze_roundtrip() {
    let dir = workdir();
    let data = dir.join("cli-sim.nwk");
    let msg = run(&[
        "simulate",
        "--taxa",
        "20",
        "--trees",
        "50",
        "--out",
        data.to_str().unwrap(),
        "--seed",
        "11",
    ])
    .unwrap();
    assert!(msg.contains("wrote 50 trees"));

    // self average-RF over the simulated file
    let table = run(&["avgrf", "--refs", data.to_str().unwrap()]).unwrap();
    assert_eq!(table.lines().count(), 51, "header + one row per query");
    // all four algorithm selections agree line-for-line
    for alg in ["bfhrf-seq", "ds", "dsmp"] {
        let other = run(&[
            "avgrf",
            "--refs",
            data.to_str().unwrap(),
            "--algorithm",
            alg,
        ])
        .unwrap();
        assert_eq!(table, other, "algorithm {alg} diverged");
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn consensus_output_reparses_and_matrix_is_symmetric() {
    let dir = workdir();
    let data = dir.join("cli-cons.nwk");
    run(&[
        "simulate",
        "--taxa",
        "12",
        "--trees",
        "30",
        "--out",
        data.to_str().unwrap(),
        "--seed",
        "5",
        "--pop-scale",
        "0.1",
    ])
    .unwrap();

    let newick = run(&["consensus", "--refs", data.to_str().unwrap()]).unwrap();
    let reparsed = phylo::TreeCollection::parse(&newick).unwrap();
    assert_eq!(reparsed.len(), 1);
    assert_eq!(reparsed.taxa.len(), 12);

    let matrix = run(&["matrix", "--refs", data.to_str().unwrap()]).unwrap();
    let rows: Vec<Vec<u32>> = matrix
        .lines()
        .map(|l| l.split('\t').map(|c| c.parse().unwrap()).collect())
        .collect();
    assert_eq!(rows.len(), 30);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[i], 0);
        for (j, &cell) in row.iter().enumerate() {
            assert_eq!(cell, rows[j][i]);
        }
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn best_query_against_separate_reference_file() {
    let dir = workdir();
    let refs = dir.join("cli-refs.nwk");
    run(&[
        "simulate",
        "--taxa",
        "16",
        "--trees",
        "80",
        "--out",
        refs.to_str().unwrap(),
        "--seed",
        "21",
        "--pop-scale",
        "0.05",
    ])
    .unwrap();
    // queries: the consensus (a strong candidate) + a random-ish tree
    let consensus = run(&["consensus", "--refs", refs.to_str().unwrap()]).unwrap();
    let shuffled = {
        // a deliberately bad candidate: caterpillar over the same labels
        let coll = phylo_sim::datasets::read_collection(&refs).unwrap();
        let labels: Vec<&str> = coll.taxa.iter().map(|(_, l)| l).collect();
        let mut s = labels[0].to_string();
        for l in &labels[1..] {
            s = format!("({s},{l})");
        }
        format!("{s};")
    };
    let queries = dir.join("cli-queries.nwk");
    std::fs::write(&queries, format!("{shuffled}\n{consensus}")).unwrap();
    let out = run(&[
        "best",
        "--refs",
        refs.to_str().unwrap(),
        "--queries",
        queries.to_str().unwrap(),
    ])
    .unwrap();
    assert!(
        out.contains("best_query\t1"),
        "consensus must beat the caterpillar: {out}"
    );
    std::fs::remove_file(&refs).ok();
    std::fs::remove_file(&queries).ok();
}

#[test]
fn lenient_exit_codes_and_report_on_corrupted_file() {
    use bfhrf_cli::{run_full, EXIT_ERROR, EXIT_OK, EXIT_PARTIAL};
    let dir = workdir();
    let data = dir.join("cli-corrupt-src.nwk");
    run(&[
        "simulate",
        "--taxa",
        "14",
        "--trees",
        "60",
        "--out",
        data.to_str().unwrap(),
        "--seed",
        "9",
    ])
    .unwrap();
    // Corrupt 3 of 60 records (5%) by stripping their closing parens;
    // the records stay ';'-terminated so the lenient reader can resync.
    let text = std::fs::read_to_string(&data).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 60);
    let bad = [7usize, 23, 41];
    let mut dirty = String::new();
    let mut clean = String::new();
    for (i, l) in lines.iter().enumerate() {
        if bad.contains(&i) {
            dirty.push_str(&l.replace(')', ""));
            dirty.push('\n');
        } else {
            dirty.push_str(l);
            dirty.push('\n');
            clean.push_str(l);
            clean.push('\n');
        }
    }
    let dirty_p = dir.join("cli-corrupt-dirty.nwk");
    let clean_p = dir.join("cli-corrupt-clean.nwk");
    std::fs::write(&dirty_p, dirty).unwrap();
    std::fs::write(&clean_p, clean).unwrap();

    let argv = |parts: &[&str]| parts.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let want = run_full(&argv(&["avgrf", "--refs", clean_p.to_str().unwrap()])).unwrap();
    assert_eq!(want.code, EXIT_OK);

    let got = run_full(&argv(&[
        "avgrf",
        "--refs",
        dirty_p.to_str().unwrap(),
        "--lenient",
    ]))
    .unwrap();
    assert_eq!(got.code, EXIT_PARTIAL, "skips must exit 2");
    assert_eq!(
        got.stdout, want.stdout,
        "lenient run must match the pre-cleaned file exactly"
    );
    assert!(
        got.notes
            .iter()
            .any(|n| n.contains("60 records, 57 accepted, 3 skipped")),
        "{:?}",
        got.notes
    );
    assert_eq!(
        got.notes
            .iter()
            .filter(|n| n.contains("skipped record"))
            .count(),
        3,
        "every skipped record is listed: {:?}",
        got.notes
    );

    let err = run_full(&argv(&["avgrf", "--refs", dirty_p.to_str().unwrap()])).unwrap_err();
    assert_eq!(err.code, EXIT_ERROR, "strict run on corrupt input exits 1");

    for p in [&data, &dirty_p, &clean_p] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn cli_surfaces_parse_errors_with_location() {
    let dir = workdir();
    let bad = dir.join("bad.nwk");
    std::fs::write(&bad, "((A,B),(C,D);\n").unwrap();
    let err = run(&["avgrf", "--refs", bad.to_str().unwrap()]).unwrap_err();
    assert!(err.contains("parse error"), "got: {err}");
    std::fs::remove_file(&bad).ok();
}
