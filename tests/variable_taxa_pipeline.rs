//! End-to-end variable-taxa workflow: simulate a fixed-taxa collection,
//! apply fragmentary-data dropout, and push the result through the
//! common-taxa RF pathway and the consensus machinery — the supertree-ish
//! use case the paper's extensibility sections target.

use bfhrf::variable_taxa::common_taxa_rf;
use bfhrf::Bfh;
use phylo::TreeCollection;
use phylo_sim::dropout::with_dropout;
use phylo_sim::DatasetSpec;

fn concordant_collection(n: usize, r: usize, seed: u64) -> TreeCollection {
    let mut spec = DatasetSpec::new("vt", n, r, seed);
    spec.pop_scale = 0.05; // low ILS so the species signal survives dropout
    phylo_sim::generate(&spec)
}

#[test]
fn dropout_then_common_taxa_rf() {
    // The all-tree taxon intersection decays as (1-p)^r, so realistic
    // variable-taxa analyses use low per-tree dropout or few trees.
    let base = concordant_collection(30, 12, 11);
    let refs = with_dropout(&base, 0.03, 20, 3);
    let queries = TreeCollection {
        taxa: base.taxa.clone(),
        trees: base.trees[..5].to_vec(),
    };
    let out = common_taxa_rf(&refs, &queries).unwrap();
    assert!(out.taxa.len() >= 4, "some taxa survive every tree");
    assert!(out.taxa.len() <= 30);
    assert_eq!(out.scores.len(), 5);
    // concordant data restricted to common taxa: distances stay small
    // relative to the 2(n-3) ceiling
    let ceiling = 2.0 * (out.taxa.len() as f64 - 3.0);
    for s in &out.scores {
        assert!(
            s.rf.average() < ceiling / 2.0,
            "query {} avg {} vs ceiling {ceiling}",
            s.index,
            s.rf.average()
        );
    }
    // the restricted result agrees with the naive loop on the same inputs
    let naive = bfhrf::sequential_rf(&out.queries, &out.refs, &out.taxa).unwrap();
    for (a, b) in out.scores.iter().zip(&naive) {
        assert_eq!(a.rf.total(), b.rf.total());
    }
}

#[test]
fn consensus_of_restricted_collection_is_valid() {
    let base = concordant_collection(24, 10, 7);
    let refs = with_dropout(&base, 0.04, 12, 9);
    let queries = TreeCollection {
        taxa: base.taxa.clone(),
        trees: vec![base.trees[0].clone()],
    };
    let out = common_taxa_rf(&refs, &queries).unwrap();
    let bfh = Bfh::build(&out.refs, &out.taxa);
    let maj = bfhrf::consensus::majority_consensus(&bfh, &out.taxa, 0.5).unwrap();
    let greedy = bfhrf::consensus::greedy_consensus(&bfh, &out.taxa).unwrap();
    assert!(maj.validate(&out.taxa).is_ok());
    assert!(greedy.validate(&out.taxa).is_ok());
    assert_eq!(maj.leaf_count(), out.taxa.len());
    // concordant source → the consensus should be well resolved
    let resolution = phylo::stats::tree_stats(&greedy).resolution;
    assert!(resolution > 0.5, "greedy resolution {resolution}");
}

#[test]
fn support_annotation_on_restricted_species_tree() {
    let base = concordant_collection(20, 12, 13);
    let refs = with_dropout(&base, 0.04, 10, 21);
    let queries = TreeCollection {
        taxa: base.taxa.clone(),
        trees: vec![base.trees[0].clone()],
    };
    let out = common_taxa_rf(&refs, &queries).unwrap();
    let bfh = Bfh::build(&out.refs, &out.taxa);
    let focal = &out.queries[0];
    let supports = bfhrf::support::edge_support(focal, &out.taxa, &bfh);
    assert!(!supports.is_empty());
    for s in &supports {
        assert!(s.fraction >= 0.0 && s.fraction <= 1.0);
        assert_eq!(s.count, bfh.frequency(s.split.bits()));
    }
    // low-ILS concordant collection: mean support is high even after
    // dropout-restriction
    let mean: f64 = supports.iter().map(|s| s.fraction).sum::<f64>() / supports.len() as f64;
    assert!(mean > 0.4, "mean support {mean}");
}
