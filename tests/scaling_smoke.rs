//! Medium-scale smoke tests: the properties the paper's evaluation rests
//! on must already be visible at test-suite-friendly sizes.

use bfhrf::{bfhrf_all, Bfh, Comparator, SetComparator};
use phylo_sim::DatasetSpec;

/// §VII.C: the number of distinct splits saturates as r grows (repeat
/// splits only bump counters), while sumBFHR grows linearly.
#[test]
fn hash_growth_saturates_in_r() {
    let mut spec = DatasetSpec::new("growth", 32, 1200, 3);
    spec.pop_scale = 0.2; // concordant collection: few distinct splits
    let coll = phylo_sim::generate(&spec);
    let b300 = Bfh::build(&coll.trees[..300], &coll.taxa);
    let b600 = Bfh::build(&coll.trees[..600], &coll.taxa);
    let b1200 = Bfh::build(&coll.trees, &coll.taxa);
    // occurrences grow exactly linearly (every binary tree has n-3 splits)
    assert_eq!(b600.sum(), 2 * b300.sum());
    assert_eq!(b1200.sum(), 4 * b300.sum());
    // distinct splits grow sublinearly — the *per-tree* rate of new
    // splits falls as the common splits are already present
    let first = (b600.distinct() - b300.distinct()) as f64 / 300.0;
    let second = (b1200.distinct() - b600.distinct()) as f64 / 600.0;
    assert!(
        second < first,
        "new-split rate should decelerate: {first:.2}/tree then {second:.2}/tree"
    );
    assert!(
        b1200.distinct() < b1200.sum() as usize / 4,
        "concordant collection must share heavily"
    );
}

/// The self-average (Q is R) of a perfectly concordant collection is 0,
/// and grows with discordance.
#[test]
fn self_average_tracks_discordance() {
    let mean_self = |pop_scale: f64| {
        let mut spec = DatasetSpec::new("disc", 16, 150, 8);
        spec.pop_scale = pop_scale;
        let coll = phylo_sim::generate(&spec);
        let bfh = Bfh::build(&coll.trees, &coll.taxa);
        let scores = bfhrf_all(&coll.trees, &coll.taxa, &bfh).unwrap();
        scores.iter().map(|s| s.rf.average()).sum::<f64>() / scores.len() as f64
    };
    let low = mean_self(1e-4);
    let mid = mean_self(0.5);
    let high = mean_self(50.0);
    assert!(low < 0.05, "near-zero ILS → near-zero distances, got {low}");
    assert!(low < mid && mid < high, "{low} < {mid} < {high} expected");
    // distances are bounded by 2(n-3)
    assert!(high <= 2.0 * 13.0);
}

/// Exact equality of BFHRF and the naive baseline at a scale where the
/// naive loop is still feasible (r=400 → 160k pairwise comparisons).
#[test]
fn medium_scale_exact_agreement() {
    let coll = phylo_sim::generate(&DatasetSpec::new("medium", 50, 400, 17));
    let bfh = Bfh::build_sharded(&coll.trees, &coll.taxa, 8);
    let fast = bfhrf_all(&coll.trees, &coll.taxa, &bfh).unwrap();
    let slow = SetComparator::new(&coll.trees, &coll.taxa)
        .parallel(true)
        .average_all(&coll.trees)
        .unwrap();
    assert_eq!(fast, slow);
    // the matrix route agrees too
    let m = bfhrf::matrix::rf_matrix_exact(&coll.trees, &coll.taxa, usize::MAX).unwrap();
    for s in fast.iter().step_by(37) {
        assert!((m.row_mean(s.index) - s.rf.average()).abs() < 1e-9);
    }
}

/// Duplicate-heavy input: a collection made of one topology repeated must
/// produce zero distances and a single-entry-per-split hash.
#[test]
fn degenerate_duplicate_collection() {
    let coll = phylo_sim::generate(&DatasetSpec::new("dup", 20, 1, 5));
    let tree = coll.trees[0].clone();
    let trees: Vec<_> = (0..100).map(|_| tree.clone()).collect();
    let bfh = Bfh::build(&trees, &coll.taxa);
    assert_eq!(bfh.distinct(), 17, "n-3 distinct splits");
    assert_eq!(bfh.sum(), 1700);
    let scores = bfhrf_all(&trees, &coll.taxa, &bfh).unwrap();
    assert!(scores.iter().all(|s| s.rf.total() == 0));
}
