//! The extensibility story (paper §VII.D–F): RF variants as drop-in
//! preprocessing/weighting over the same frequency hash.
//!
//! Shows, on one dataset: plain average RF, the normalized and halved
//! conventions, information-content weighting, bipartition-size
//! filtering, variable-taxa restriction, and the pairwise branch-score
//! distance.
//!
//! ```text
//! cargo run --example rf_variants
//! ```

use bfhrf::variants::{
    branch_score, normalized_average, GeneralizedRf, PhyloInfoWeight, SizeFilteredRf, UnitWeight,
};
use bfhrf::{bfhrf_average, Bfh};
use phylo::{read_trees_from_str, TaxaPolicy, TreeCollection};

fn main() {
    let mut refs = TreeCollection::parse(
        "((a,b),((c,d),((e,f),(g,h))));
         ((a,b),((c,d),((e,g),(f,h))));
         ((a,b),(((c,e),d),(f,(g,h))));
         ((a,c),((b,d),((e,f),(g,h))));",
    )
    .unwrap();
    let query = read_trees_from_str(
        "((a,b),((c,d),((e,f),(g,h))));",
        &mut refs.taxa,
        TaxaPolicy::Require,
    )
    .unwrap()
    .remove(0);
    let n = refs.taxa.len();
    let bfh = Bfh::build(&refs.trees, &refs.taxa);

    // Plain, halved, normalized — the conventions §II.C mentions.
    let rf = bfhrf_average(&query, &refs.taxa, &bfh);
    println!("average RF             : {:.4}", rf.average());
    println!("average RF / 2         : {:.4}", rf.average_halved());
    println!("normalized to [0,1]    : {:.4}", normalized_average(&rf, n));

    // Generalized RF with split weights.
    let unit = GeneralizedRf::new(&bfh, UnitWeight);
    let info = GeneralizedRf::new(&bfh, PhyloInfoWeight::new(n));
    println!(
        "unit-weighted (check)  : {:.4}",
        unit.average(&query, &refs.taxa)
    );
    println!(
        "info-content weighted  : {:.4}",
        info.average(&query, &refs.taxa)
    );

    // Bipartition-size filtering — the variant the paper implements.
    let cherries_only = SizeFilteredRf::new(&refs.trees, &refs.taxa, 2, 2);
    println!(
        "cherry-splits only     : {:.4}  ({} splits kept in the hash)",
        cherries_only.average(&query, &refs.taxa).average(),
        cherries_only.bfh().distinct()
    );

    // Variable taxa: a second collection missing taxon h entirely.
    let refs_small = TreeCollection::parse(
        "((a,b),((c,d),(e,(f,g))));
         ((a,b),((c,e),(d,(f,g))));",
    )
    .unwrap();
    let queries_full = TreeCollection::parse("((a,b),((c,d),((e,f),(g,h))));").unwrap();
    let common = bfhrf::variable_taxa::common_taxa_rf(&refs_small, &queries_full)
        .expect("enough shared taxa");
    println!(
        "variable taxa          : {:.4}  (on {} common taxa)",
        common.scores[0].rf.average(),
        common.taxa.len()
    );

    // Branch-score distance needs branch lengths: pairwise only.
    let mut wt = phylo::TaxonSet::new();
    let weighted = read_trees_from_str(
        "((a:1,b:1):0.5,(c:1,d:1):0.5);
         ((a:1,b:1):0.9,(c:1,d:1):0.9);",
        &mut wt,
        TaxaPolicy::Grow,
    )
    .unwrap();
    println!(
        "branch score (pairwise): {:.4}",
        branch_score(&weighted[0], &weighted[1], &wt)
    );
}
