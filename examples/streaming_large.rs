//! Streaming BFHRF over a large on-disk collection — the memory story.
//!
//! The paper's headline memory result (Table III: 1.3 GB where baselines
//! need 27–37 GB) comes from never materializing the collection: the hash
//! is built from a stream and queries are answered from a stream. This
//! example writes a 20k-tree collection to disk, then runs the whole
//! analysis from the file with only the hash resident.
//!
//! ```text
//! cargo run --release --example streaming_large
//! ```

use bfhrf::rf::bfhrf_streaming;
use bfhrf::Bfh;
use phylo::newick::NewickStream;
use phylo::{BipartitionScratch, TaxaPolicy, TaxonSet};
use phylo_sim::datasets::{write_collection, DatasetSpec};
use std::io::BufReader;
use std::time::Instant;

fn main() {
    let n_taxa = 100;
    let n_trees = 20_000;
    let path = std::env::temp_dir().join("bfhrf-streaming-demo.nwk");

    // Materialize once, to disk (this is the dataset, not the algorithm).
    let spec = DatasetSpec::new("streaming-demo", n_taxa, n_trees, 42);
    let coll = phylo_sim::generate(&spec);
    write_collection(&path, &coll).expect("write dataset");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "dataset: {n_trees} trees / {n_taxa} taxa, {:.1} MB on disk",
        bytes as f64 / 1e6
    );
    drop(coll); // nothing of the collection stays in memory

    // Phase 1: stream the references into the hash, one tree at a time,
    // through a single reused extraction arena — only the hash (plus the
    // current tree) is ever resident.
    let mut taxa = TaxonSet::with_numbered("t", n_taxa);
    let t0 = Instant::now();
    let file = std::fs::File::open(&path).expect("open refs");
    let mut stream = NewickStream::new(BufReader::new(file), TaxaPolicy::Require);
    let mut bfh = Bfh::empty(n_taxa);
    let mut scratch = BipartitionScratch::new();
    while let Some(tree) = stream.next_tree(&mut taxa).expect("parse refs") {
        bfh.add_tree_with(&tree, &taxa, &mut scratch);
    }
    println!(
        "hash built in {:.2}s: {} distinct splits from {} trees (approx {:.1} MB resident)",
        t0.elapsed().as_secs_f64(),
        bfh.distinct(),
        bfh.n_trees(),
        bfh.approx_bytes() as f64 / 1e6
    );

    // Phase 2: stream the queries (same file — Q is R) against the hash.
    let t1 = Instant::now();
    let file = std::fs::File::open(&path).expect("open queries");
    let scores = bfhrf_streaming(BufReader::new(file), &mut taxa, &bfh).expect("score queries");
    let mean: f64 = scores.iter().map(|s| s.rf.average()).sum::<f64>() / scores.len() as f64;
    println!(
        "scored {} queries in {:.2}s; mean average RF = {:.3}",
        scores.len(),
        t1.elapsed().as_secs_f64(),
        mean
    );

    std::fs::remove_file(&path).ok();
}
