//! Clustering a tree collection by RF distance.
//!
//! The paper's intro motivates the all-vs-all RF matrix with clustering
//! workloads. Here a mixture of gene trees from TWO different species
//! trees is clustered with k-medoids on the exact RF matrix; the
//! clustering must recover the two sources, and the silhouette score must
//! pick k = 2.
//!
//! ```text
//! cargo run --release --example clustering
//! ```

use bfhrf::cluster::{k_medoids, silhouette};
use bfhrf::matrix::rf_matrix_exact;
use phylo::TreeCollection;
use phylo_sim::coalescent::MscSimulator;
use phylo_sim::species::kingman_species_tree;

fn main() {
    // two unrelated species trees over the same taxa
    let (sp_a, taxa) = kingman_species_tree(24, 1.0, 100);
    let (sp_b, _) = kingman_species_tree(24, 1.0, 200);
    let mut sim_a = MscSimulator::new(sp_a, taxa.clone(), 0.1, 1);
    let mut sim_b = MscSimulator::new(sp_b, taxa.clone(), 0.1, 2);

    // interleave 60 + 60 gene trees
    let genes_a = sim_a.gene_trees(60);
    let genes_b = sim_b.gene_trees(60);
    let mut trees = Vec::new();
    let mut truth = Vec::new();
    for (a, b) in genes_a.trees.into_iter().zip(genes_b.trees) {
        trees.push(a);
        truth.push(0usize);
        trees.push(b);
        truth.push(1usize);
    }
    let coll = TreeCollection { taxa, trees };
    println!(
        "mixture of {} gene trees from two species trees",
        coll.len()
    );

    let matrix = rf_matrix_exact(&coll.trees, &coll.taxa, 1 << 30).expect("fits budget");

    // model selection: silhouette across k
    println!("\n k   cost      silhouette");
    let mut best_k = 2;
    let mut best_sil = f64::MIN;
    for k in 2..=5 {
        let c = k_medoids(&matrix, k);
        let s = silhouette(&matrix, &c.assignment, k);
        println!("{k:>2}   {:>8}  {s:.3}", c.cost);
        if s > best_sil {
            best_sil = s;
            best_k = k;
        }
    }
    println!("\nsilhouette picks k = {best_k}");
    assert_eq!(best_k, 2, "two sources → two clusters");

    // purity of the k=2 clustering against the known sources
    let c = k_medoids(&matrix, 2);
    let agree = truth
        .iter()
        .zip(&c.assignment)
        .filter(|&(&t, &a)| t == a)
        .count();
    let purity = agree.max(coll.len() - agree) as f64 / coll.len() as f64;
    println!("cluster purity vs true sources: {:.1}%", purity * 100.0);
    assert!(purity > 0.95, "sources must separate cleanly");
}
