//! Consensus analysis straight from the frequency hash.
//!
//! The same [`bfhrf::Bfh`] that answers average-RF queries holds the split
//! frequencies a consensus method needs — one pass over the collection
//! serves both analyses (paper §VIII: "we can simplify to the average RF
//! value for most consensus type analyses").
//!
//! ```text
//! cargo run --release --example consensus_pipeline
//! ```

use bfhrf::consensus::{majority_consensus, strict_consensus};
use bfhrf::Bfh;
use phylo_sim::coalescent::MscSimulator;
use phylo_sim::species::kingman_species_tree;

fn main() {
    // Gene trees with mild discordance around a 16-taxon species tree.
    let (species, taxa) = kingman_species_tree(16, 1.0, 5);
    let mut sim = MscSimulator::new(species.clone(), taxa.clone(), 0.15, 11);
    let genes = sim.gene_trees(500);

    let bfh = Bfh::build(&genes.trees, &genes.taxa);
    println!(
        "built hash over {} gene trees: {} distinct splits",
        bfh.n_trees(),
        bfh.distinct()
    );

    // Split frequency spectrum: how often is each split seen?
    let mut freqs: Vec<u32> = bfh.iter().map(|(_, c)| c).collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    println!("top split frequencies: {:?}", &freqs[..freqs.len().min(10)]);

    for threshold in [0.5, 0.75, 0.95] {
        let tree = majority_consensus(&bfh, &genes.taxa, threshold).expect("valid threshold");
        println!(
            "\nmajority consensus (> {:.0}%): {} internal splits\n  {}",
            threshold * 100.0,
            tree.bipartitions(&genes.taxa).len(),
            phylo::write_newick(&tree, &genes.taxa)
        );
    }

    let strict = strict_consensus(&bfh, &genes.taxa).expect("nonempty");
    println!(
        "\nstrict consensus: {} internal splits\n  {}",
        strict.bipartitions(&genes.taxa).len(),
        phylo::write_newick(&strict, &genes.taxa)
    );

    // With mild ILS the majority consensus should recover the species tree.
    let maj = majority_consensus(&bfh, &genes.taxa, 0.5).unwrap();
    let truth = phylo::BipartitionSet::from_tree(&species, &taxa);
    let got = phylo::BipartitionSet::from_tree(&maj, &genes.taxa);
    println!(
        "\nRF(majority consensus, true species tree) = {}",
        truth.rf_distance(&got)
    );
}
