//! Quickstart: average Robinson-Foulds of query trees against a reference
//! collection with BFHRF.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bfhrf::{best_query, bfhrf_all, Bfh};
use phylo::{read_trees_from_str, TaxaPolicy, TreeCollection};

fn main() {
    // Reference collection: three gene trees over six taxa. In real use
    // this comes from a file — TreeCollection::parse takes any
    // `;`-separated Newick text.
    let mut refs = TreeCollection::parse(
        "((human,chimp),((rat,mouse),(dog,cat)));
         ((human,chimp),((rat,mouse),(dog,cat)));
         (((human,chimp),rat),(mouse,(dog,cat)));",
    )
    .expect("valid newick");

    // Query trees are parsed against the SAME taxon namespace so the
    // bipartition bitmasks line up (`TaxaPolicy::Require`).
    let queries = read_trees_from_str(
        "((human,chimp),((rat,mouse),(dog,cat)));
         ((human,rat),((chimp,mouse),(dog,cat)));",
        &mut refs.taxa,
        TaxaPolicy::Require,
    )
    .expect("queries use known taxa");

    // 1. Build the bipartition frequency hash over the references.
    let bfh = Bfh::build(&refs.trees, &refs.taxa);
    println!(
        "hash: {} distinct bipartitions, {} total occurrences over {} trees",
        bfh.distinct(),
        bfh.sum(),
        bfh.n_trees()
    );

    // 2. One tree-vs-hash comparison per query.
    let scores = bfhrf_all(&queries, &refs.taxa, &bfh).expect("nonempty inputs");
    for s in &scores {
        println!(
            "query {}: average RF = {:.4} (total {}, left {}, right {})",
            s.index,
            s.rf.average(),
            s.rf.total(),
            s.rf.left,
            s.rf.right
        );
    }

    // 3. Pick the query closest to the collection.
    let best = best_query(&scores).expect("nonempty");
    println!(
        "best query: #{} with average RF {:.4}",
        best.index,
        best.rf.average()
    );
    assert_eq!(best.index, 0, "the concordant topology wins");
}
