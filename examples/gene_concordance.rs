//! Gene-concordance support values from the frequency hash.
//!
//! A direct application of the BFH beyond average RF (paper §IX): each
//! edge of a focal species tree is annotated with the fraction of gene
//! trees containing its split — the gene concordance factor. Deep, short
//! branches (prone to incomplete lineage sorting) get visibly lower
//! support than long ones.
//!
//! ```text
//! cargo run --release --example gene_concordance
//! ```

use bfhrf::support::{edge_support, write_newick_with_support};
use bfhrf::BfhBuilder;
use phylo_sim::coalescent::MscSimulator;
use phylo_sim::species::kingman_species_tree;

fn main() {
    let (species, taxa) = kingman_species_tree(16, 1.0, 77);
    let mut sim = MscSimulator::new(species.clone(), taxa.clone(), 0.25, 3);
    let genes = sim.gene_trees(1000);

    let bfh = BfhBuilder::new()
        .parallel(true)
        .shards(4)
        .from_trees(&genes.trees, &genes.taxa)
        .expect("gene trees live in their own namespace");
    let supports = edge_support(&species, &genes.taxa, &bfh);

    println!("edge supports of the true species tree over 1000 gene trees:\n");
    println!("{:>10}  {:>7}  split", "count", "support");
    let mut sorted = supports.clone();
    sorted.sort_by_key(|s| std::cmp::Reverse(s.count));
    for s in &sorted {
        println!("{:>10}  {:>6.1}%  {}", s.count, s.fraction * 100.0, s.split);
    }

    let annotated = write_newick_with_support(&species, &genes.taxa, &bfh);
    println!("\nannotated newick:\n{annotated}");

    // sanity: nearly every edge of the true tree is seen in some gene
    // tree (the very shortest branches can legitimately vanish under deep
    // coalescence), and the average support is substantial
    let supported = supports.iter().filter(|s| s.count > 0).count();
    assert!(
        supported * 5 >= supports.len() * 4,
        "at least 80% of true edges should appear: {supported}/{}",
        supports.len()
    );
    let mean: f64 = supports.iter().map(|s| s.fraction).sum::<f64>() / supports.len() as f64;
    println!("\nmean concordance factor: {:.1}%", mean * 100.0);
    assert!(mean > 0.3, "true-tree edges must be well supported");
}
