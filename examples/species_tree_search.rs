//! The paper's motivating workload (§I): given candidate species trees
//! (queries) and a collection of gene trees (references), find the
//! candidate with the lowest average RF — the most-parsimonious
//! representative under the RF criterion.
//!
//! We simulate the setting end-to-end: a true species tree generates gene
//! trees under the multispecies coalescent; candidates are NNI
//! perturbations of the truth (plus the truth itself); BFHRF must rank the
//! true tree first.
//!
//! ```text
//! cargo run --release --example species_tree_search
//! ```

use bfhrf::{best_query, BfhBuilder, BfhrfComparator, Comparator};
use phylo_sim::coalescent::MscSimulator;
use phylo_sim::perturb::nni_walk;
use phylo_sim::species::kingman_species_tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n_taxa = 40;
    let n_genes = 2000;
    let n_candidates = 24;

    // Ground truth + gene trees with moderate incomplete lineage sorting.
    let (species, taxa) = kingman_species_tree(n_taxa, 1.0, 2024);
    // pop_scale 0.1: moderate incomplete lineage sorting — enough noise to
    // make the search non-trivial, not so much that the average-RF optimum
    // drifts off the true tree (at high ILS it legitimately can).
    let mut sim = MscSimulator::new(species.clone(), taxa.clone(), 0.1, 7);
    let genes = sim.gene_trees(n_genes);
    println!("simulated {n_genes} gene trees over {n_taxa} taxa");

    // Candidate set: the truth plus perturbations at increasing distance.
    let mut rng = StdRng::seed_from_u64(99);
    let mut candidates = vec![species.clone()];
    for k in 1..n_candidates {
        candidates.push(nni_walk(&species, 1 + k / 4, &mut rng));
    }

    // Hash the gene trees once; score every candidate in parallel.
    let bfh = BfhBuilder::new()
        .parallel(true)
        .shards(8)
        .from_trees(&genes.trees, &genes.taxa)
        .expect("gene trees live in their own namespace");
    let scores = BfhrfComparator::new(&bfh, &genes.taxa)
        .parallel(true)
        .average_all(&candidates)
        .expect("nonempty");

    let mut ranked = scores.clone();
    ranked.sort_by_key(|a| a.rf.total());
    println!("\nrank  candidate  avg RF to gene trees");
    for (rank, s) in ranked.iter().take(8).enumerate() {
        let marker = if s.index == 0 {
            "  <- true species tree"
        } else {
            ""
        };
        println!(
            "{:>4}  {:>9}  {:.4}{}",
            rank + 1,
            s.index,
            s.rf.average(),
            marker
        );
    }

    let best = best_query(&scores).expect("nonempty");
    assert_eq!(
        best.index, 0,
        "the true species tree must minimize average RF to its own gene trees"
    );
    println!("\nthe true species tree (candidate 0) wins, as expected");
}
