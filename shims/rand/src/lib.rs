//! Offline stand-in for the `rand` crate.
//!
//! Implements the exact surface this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] over integer
//! and float ranges. The generator is xoshiro256++ seeded through SplitMix64
//! (the same seeding scheme upstream `rand` uses for small seeds), so
//! streams are deterministic per seed but not bit-identical to upstream.

use std::ops::{Range, RangeInclusive};

/// Uniform random generators: the low-level word source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (upstream calls this `Rng`; the workspace
/// imports it as `RngExt`).
pub trait RngExt: RngCore {
    /// Sample uniformly from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 top bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's widening-multiply mapping; the slight non-uniformity for huge
    // spans is irrelevant for simulation/test workloads.
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + sample_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding landing exactly on `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide: f64 = (self.start as f64..self.end as f64).sample_from(rng);
        wide as f32
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, 256-bit state, good equidistribution.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion, as upstream rand does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(42).random_range(0..u64::MAX) == c.random_range(0..u64::MAX)
        });
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn integer_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..3);
            assert!((0..3).contains(&w));
            let i = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn full_width_range_supported() {
        let mut rng = StdRng::seed_from_u64(9);
        // must not overflow or panic
        let _ = rng.random_range(0..u64::MAX);
        let _ = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let u = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn covers_every_small_bucket() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler misses buckets");
    }
}
