//! Value-generation strategies.
//!
//! A [`Strategy`] knows how to draw one value from a [`TestRng`]. Unlike
//! upstream proptest there is no value tree and no shrinking — failures
//! reproduce deterministically instead.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of type `Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a new strategy from each sampled value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Map sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `base.prop_flat_map(f)`.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.base.sample(rng);
        (self.f)(mid).sample(rng)
    }
}

/// `base.prop_map(f)`.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform over a type's whole domain (`any::<u64>()`).
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Length bounds for [`crate::collection::vec`].
pub trait SizeRange {
    /// `(min, max)`, both inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with bounded length.
pub struct VecStrategy<S: Strategy> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// String patterns: `&str` as a strategy over a tiny regex subset.
// ---------------------------------------------------------------------------

/// The regex subset the workspace uses: one atom — either `\PC` (printable)
/// or a `[...]` char class — followed by an optional `{m,n}` repetition.
#[derive(Debug, Clone)]
struct StringPattern {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Printable sample space for `\PC`: ASCII plus a few multibyte characters
/// so UTF-8 boundary handling gets exercised.
const PRINTABLE_EXTRAS: [char; 6] = ['é', 'λ', '中', '∅', '🌲', 'ß'];

fn parse_pattern(pattern: &str) -> StringPattern {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos: usize;
    let mut ranges: Vec<(char, char)> = Vec::new();

    if pattern.starts_with("\\PC") {
        ranges.push((' ', '~')); // printable ASCII
        for c in PRINTABLE_EXTRAS {
            ranges.push((c, c));
        }
        pos = 3;
    } else if chars.first() == Some(&'[') {
        pos = 1;
        let mut class: Vec<char> = Vec::new();
        let mut closed = false;
        while pos < chars.len() {
            match chars[pos] {
                ']' => {
                    closed = true;
                    pos += 1;
                    break;
                }
                '\\' if pos + 1 < chars.len() => {
                    class.push(chars[pos + 1]);
                    pos += 2;
                }
                c => {
                    class.push(c);
                    pos += 1;
                }
            }
        }
        assert!(closed, "unterminated char class in pattern {pattern:?}");
        // Resolve `a-b` spans; `-` first or last is a literal.
        let mut i = 0usize;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                assert!(class[i] <= class[i + 2], "bad range in {pattern:?}");
                ranges.push((class[i], class[i + 2]));
                i += 3;
            } else {
                ranges.push((class[i], class[i]));
                i += 1;
            }
        }
        assert!(
            !ranges.is_empty(),
            "empty char class in pattern {pattern:?}"
        );
    } else {
        panic!("unsupported string pattern {pattern:?} (shim supports `\\PC` or `[...]` with optional `{{m,n}}`)");
    }

    let (min, max) = if chars.get(pos) == Some(&'{') {
        let rest: String = chars[pos + 1..].iter().collect();
        let body = rest
            .split_once('}')
            .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"))
            .0;
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().expect("repetition lower bound"),
                hi.parse().expect("repetition upper bound"),
            ),
            None => {
                let n = body.parse().expect("repetition count");
                (n, n)
            }
        }
    } else {
        (1, 1)
    };
    assert!(min <= max, "inverted repetition in {pattern:?}");
    StringPattern { ranges, min, max }
}

impl StringPattern {
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        let total: u64 = self
            .ranges
            .iter()
            .map(|&(a, b)| (b as u64) - (a as u64) + 1)
            .sum();
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let mut pick = rng.below(total);
            for &(a, b) in &self.ranges {
                let size = (b as u64) - (a as u64) + 1;
                if pick < size {
                    // All class ranges the workspace uses stay inside a
                    // contiguous scalar-value span, so this cannot land on
                    // a surrogate.
                    out.push(char::from_u32(a as u32 + pick as u32).expect("valid scalar"));
                    break;
                }
                pick -= size;
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        parse_pattern(self).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (4usize..60).sample(&mut r);
            assert!((4..60).contains(&v));
            let w = (1usize..=300).sample(&mut r);
            assert!((1..=300).contains(&w));
            let f = (0.05f64..20.0).sample(&mut r);
            assert!((0.05..20.0).contains(&f));
        }
    }

    #[test]
    fn flat_map_and_collection_vec() {
        let strat =
            (1usize..=30).prop_flat_map(|len| (Just(len), crate::collection::vec(0..len, 0..=len)));
        let mut r = rng();
        for _ in 0..500 {
            let (len, v) = strat.sample(&mut r);
            assert!(v.len() <= len);
            assert!(v.iter().all(|&x| x < len));
        }
    }

    #[test]
    fn char_class_pattern_only_emits_class_members() {
        let pat = "[(),;:A-Ea-e0-9.'\\[\\] _-]{0,160}";
        let mut r = rng();
        let allowed = |c: char| {
            "(),;:.'[] _-".contains(c)
                || ('A'..='E').contains(&c)
                || ('a'..='e').contains(&c)
                || c.is_ascii_digit()
        };
        for _ in 0..200 {
            let s = Strategy::sample(&pat, &mut r);
            assert!(s.chars().count() <= 160);
            assert!(s.chars().all(allowed), "stray char in {s:?}");
        }
    }

    #[test]
    fn printable_pattern_has_bounded_len() {
        let pat = "\\PC{0,120}";
        let mut r = rng();
        for _ in 0..200 {
            let s = Strategy::sample(&pat, &mut r);
            assert!(s.chars().count() <= 120);
        }
    }

    #[test]
    fn single_char_class_yields_one_char() {
        let pat = "[(),;:A-D0-9.]";
        let mut r = rng();
        for _ in 0..100 {
            let s = Strategy::sample(&pat, &mut r);
            assert_eq!(s.chars().count(), 1);
        }
    }

    #[test]
    fn tuple_and_any_strategies() {
        let mut r = rng();
        let (a, b) = (any::<u64>(), any::<bool>()).sample(&mut r);
        let _ = (a, b);
        let mapped = (0usize..10).prop_map(|x| x * 2).sample(&mut r);
        assert!(mapped % 2 == 0 && mapped < 20);
    }
}
