//! Deterministic RNG driving the shim's strategies.

/// SplitMix64-seeded xorshift-multiply generator. Each test case gets its
/// own stream derived from the test's path and the case index, so runs are
/// fully reproducible without any persisted state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for `test_path` (e.g. `module::test_name`) at `case`.
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_path.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng {
            state: if h == 0 { 0xdead_beef } else { h },
        }
    }

    /// Next 64 uniform bits (SplitMix64 output function).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn reproducible_and_distinct() {
        let mut a = TestRng::deterministic("m::t", 3);
        let mut b = TestRng::deterministic("m::t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("m::t", 4);
        let mut d = TestRng::deterministic("m::u", 3);
        let base = TestRng::deterministic("m::t", 3).next_u64();
        assert_ne!(base, c.next_u64());
        assert_ne!(base, d.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::deterministic("r", 0);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }
}
