//! Offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and strategies for
//! integer/float ranges, `any::<T>()`, [`Just`], tuples,
//! [`collection::vec`], `prop_flat_map`/`prop_map`, and simple string
//! "regex" patterns (a char class or `\PC` with an optional `{m,n}`
//! repetition).
//!
//! There is **no shrinking**: a failing case reports its case number and
//! re-runs reproducibly (seeds derive from the test path and case index).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Per-test configuration (`cases` is the only knob this shim honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising a meaningful spread of inputs per property.
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property; failure aborts the current case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when a precondition does not hold.
///
/// Expands to an early `return` from the case closure, so it may only be
/// used at the top level of a property body (which is how the workspace
/// uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..100, s in "[a-z]{0,8}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0u32..__config.cases {
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let mut __rng = $crate::test_runner::TestRng::deterministic(
                            concat!(module_path!(), "::", stringify!($name)),
                            __case,
                        );
                        $(
                            let $pat =
                                $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        )*
                        $body
                    }),
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest: property `{}` failed at case {}/{} \
                         (seeds are deterministic; rerun reproduces it)",
                        stringify!($name),
                        __case,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}
