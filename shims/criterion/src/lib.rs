//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface the workspace's benches use:
//! [`Criterion::benchmark_group`], `bench_function`/`bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`]/
//! [`criterion_main!`] macros. Measurement is a plain wall-clock loop: one
//! warm-up batch, then `sample_size` timed batches, reporting mean and
//! minimum per iteration. No statistics engine, no HTML reports — the
//! numbers go to stdout, which is what the repro scripts scrape.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, keeping results opaque to the optimizer.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness state.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        group.finish();
        self
    }
}

/// A set of benchmarks sharing sizing/timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Flush the group (a no-op beyond matching the upstream API).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };

        // Warm-up and calibration: find an iteration count whose batch
        // runtime is meaningful but bounded.
        let mut bench = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = loop {
            f(&mut bench);
            let t = bench.elapsed.max(Duration::from_nanos(1)) / (bench.iters as u32).max(1);
            if warm_start.elapsed() >= self.warm_up_time || bench.elapsed >= self.warm_up_time {
                break t;
            }
            bench.iters = (bench.iters * 2).min(1 << 20);
        };
        if per_iter.is_zero() {
            per_iter = Duration::from_nanos(1);
        }

        // Split the measurement budget into `sample_size` batches.
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let per_batch = budget / self.sample_size as u32;
        let iters_per_batch =
            (per_batch.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_batch as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{full:<48} time: [mean {} min {}] ({} samples x {} iters)",
            fmt_secs(mean),
            fmt_secs(min),
            samples.len(),
            iters_per_batch
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Collect benchmark functions into one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_group_end_to_end() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("BFHRF", 32).to_string(), "BFHRF/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
