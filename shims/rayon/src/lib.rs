//! Offline stand-in for the `rayon` crate.
//!
//! Covers the surface this workspace uses: `par_iter()` on slices with
//! `map`/`enumerate`/`fold`/`reduce`/`sum`/`collect` chains, `par_chunks`,
//! and `ThreadPoolBuilder`/`ThreadPool::install`. Adapters execute eagerly
//! at the terminal operation by splitting the input into contiguous chunks
//! and running them on `std::thread::scope` workers; results are always
//! concatenated in input order, so `collect` is order-identical to the
//! sequential iterator (as real rayon's indexed collect is).
//!
//! The worker count comes from [`current_num_threads`]: a thread-local
//! override installed by [`ThreadPool::install`], defaulting to
//! `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::fmt;
use std::iter::Sum;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the calling context would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error from [`ThreadPoolBuilder::build`] (infallible here, kept for API
/// compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// `0` means "use the default parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A handle fixing the worker count for closures run under [`install`].
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Split `[0, len)` into at most `workers` contiguous spans.
fn spans(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let sz = base + usize::from(w < extra);
        if sz == 0 {
            break;
        }
        out.push((start, start + sz));
        start += sz;
    }
    out
}

/// Run `f(start, end)` over the spans of `len` items on scoped worker
/// threads, returning the per-span outputs in span order.
fn run_spans<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, usize) -> U + Sync,
{
    let workers = current_num_threads();
    let spans = spans(len, workers);
    if spans.len() <= 1 {
        return spans.into_iter().map(|(s, e)| f(s, e)).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .skip(1)
            .map(|&(s, e)| scope.spawn(move || f(s, e)))
            .collect();
        let (s0, e0) = spans[0];
        let mut out = Vec::with_capacity(spans.len());
        out.push(f(s0, e0));
        for h in handles {
            out.push(h.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// Parallel iterator over `&[T]`, produced by [`par_iter`].
///
/// [`par_iter`]: IntoParallelRefIterator::par_iter
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Parallel iterator over contiguous chunks, produced by
/// [`ParallelSlice::par_chunks`].
pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk: usize,
}

/// `.map(f)` over [`ParIter`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// `.enumerate()` over [`ParIter`].
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

/// `.map(f)` over [`ParEnumerate`].
pub struct ParEnumMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// `.map(f)` over [`ParChunks`].
pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    chunk: usize,
    f: F,
}

/// Chunk accumulators from `.fold(id, f)`, awaiting `.reduce`.
pub struct ParFold<A> {
    accs: Vec<A>,
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    /// Eager chunked fold: each worker folds its contiguous span into an
    /// accumulator seeded by `identity`.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParFold<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, &'a T) -> A + Sync,
    {
        let items = self.items;
        let accs = run_spans(items.len(), |s, e| {
            items[s..e].iter().fold(identity(), &fold_op)
        });
        ParFold { accs }
    }
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let (items, f) = (self.items, &self.f);
        run_spans(items.len(), |s, e| {
            items[s..e].iter().map(f).collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    pub fn sum<S>(self) -> S
    where
        S: Sum<U> + Sum<S> + Send,
    {
        let (items, f) = (self.items, &self.f);
        run_spans(items.len(), |s, e| items[s..e].iter().map(f).sum::<S>())
            .into_iter()
            .sum()
    }
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParEnumMap<'a, T, F>
    where
        U: Send,
        F: Fn((usize, &'a T)) -> U + Sync,
    {
        ParEnumMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T, U, F> ParEnumMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn((usize, &'a T)) -> U + Sync,
{
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let (items, f) = (self.items, &self.f);
        run_spans(items.len(), |s, e| {
            items[s..e]
                .iter()
                .enumerate()
                .map(|(i, t)| f((s + i, t)))
                .collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
    {
        ParChunksMap {
            items: self.items,
            chunk: self.chunk,
            f,
        }
    }

    pub fn enumerate(self) -> ParChunksEnumerate<'a, T> {
        ParChunksEnumerate {
            items: self.items,
            chunk: self.chunk,
        }
    }
}

impl<'a, T, U, F> ParChunksMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a [T]) -> U + Sync,
{
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let (items, chunk, f) = (self.items, self.chunk, &self.f);
        let n_chunks = items.len().div_ceil(chunk.max(1));
        run_spans(n_chunks, |s, e| {
            (s..e)
                .map(|ci| f(&items[ci * chunk..((ci + 1) * chunk).min(items.len())]))
                .collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// `.enumerate()` over [`ParChunks`]: items are `(chunk_index, chunk)`.
pub struct ParChunksEnumerate<'a, T> {
    items: &'a [T],
    chunk: usize,
}

/// `.map(f)` over [`ParChunksEnumerate`].
pub struct ParChunksEnumMap<'a, T, F> {
    items: &'a [T],
    chunk: usize,
    f: F,
}

impl<'a, T: Sync> ParChunksEnumerate<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParChunksEnumMap<'a, T, F>
    where
        U: Send,
        F: Fn((usize, &'a [T])) -> U + Sync,
    {
        ParChunksEnumMap {
            items: self.items,
            chunk: self.chunk,
            f,
        }
    }
}

impl<'a, T, U, F> ParChunksEnumMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn((usize, &'a [T])) -> U + Sync,
{
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let (items, chunk, f) = (self.items, self.chunk, &self.f);
        let n_chunks = items.len().div_ceil(chunk.max(1));
        run_spans(n_chunks, |s, e| {
            (s..e)
                .map(|ci| f((ci, &items[ci * chunk..((ci + 1) * chunk).min(items.len())])))
                .collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl<A: Send> ParFold<A> {
    /// Merge the chunk accumulators left-to-right.
    pub fn reduce<ID, F>(self, identity: ID, reduce_op: F) -> A
    where
        ID: Fn() -> A,
        F: Fn(A, A) -> A,
    {
        self.accs.into_iter().fold(identity(), reduce_op)
    }
}

/// `par_iter()` entry point for shared slices.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// `par_chunks()` entry point for shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            items: self,
            chunk: chunk_size,
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let doubled: Vec<u32> = pool.install(|| v.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_indices_are_global() {
        let v = vec!["a"; 97];
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let idx: Vec<usize> = pool.install(|| v.par_iter().enumerate().map(|(i, _)| i).collect());
        assert_eq!(idx, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let v: Vec<u64> = (1..=10_000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let total = pool.install(|| {
            v.par_iter()
                .fold(|| 0u64, |acc, &x| acc + x)
                .reduce(|| 0u64, |a, b| a + b)
        });
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<f64> = (0..5000).map(|x| x as f64).collect();
        let got: f64 = v.par_iter().map(|&x| x * 0.5).sum();
        let want: f64 = v.iter().map(|&x| x * 0.5).sum();
        assert!((got - want).abs() < 1e-6);
    }

    #[test]
    fn par_chunks_covers_everything_in_order() {
        let v: Vec<u32> = (0..103).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let sums: Vec<u32> =
            pool.install(|| v.par_chunks(10).map(|c| c.iter().sum::<u32>()).collect());
        let want: Vec<u32> = v.chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, want);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 5);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let folded = v
            .par_iter()
            .fold(|| 1u32, |a, b| a + b)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(folded, 0);
    }
}
