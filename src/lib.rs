//! Workspace-level examples and integration tests live in the root package.
//! See `examples/` and `tests/`; the library surface is in the member crates.
